//! Stochastic (sub)gradient descent with the paper's enhancements.
//!
//! The iteration is `xₜ ← xₜ₋₁ − γₜ dₜ` where `dₜ` is the (possibly
//! momentum-smoothed) gradient evaluated *through a fault-prone FPU*. As in
//! the paper, "the remaining operations, including computing the step size,
//! updating `x` with the step, and testing for convergence, are assumed to
//! be carried out reliably as they are critical for convergence" — those run
//! in native arithmetic here (the control plane).
//!
//! Enhancements from §3.2 / §6.2:
//!
//! * **Step-size schedules** — `1/t` (LS), `1/√t` (SQS), fixed.
//! * **Aggressive stepping (AS)** — after the fixed iteration budget, a
//!   phase of adaptive stepping grows the step on success and shrinks it on
//!   failure until progress stalls.
//! * **Momentum** — `dₜ = β ∇f + (1−β) dₜ₋₁` smooths oscillating gradients.
//! * **Annealing** — the penalty parameter `μ` of a
//!   [`PenaltyCost`](crate::PenaltyCost) is periodically increased.
//! * **Gradient guard** — a cheap control-plane sanitization of the noisy
//!   gradient (zeroing non-finite lanes, norm clipping). The paper assumes
//!   gradient noise with bounded variance (Theorem 1); raw exponent-bit
//!   flips violate that, and the guard is the software knob that restores
//!   it. Set [`GradientGuard::Off`] to study the unguarded behaviour.

use crate::cost::CostFunction;
use crate::schedule::StepSchedule;
use crate::trace::Trace;
use stochastic_fpu::{Fpu, FpuExt, ReliableFpu};

/// The adaptive step-size phase appended after the main loop (§3.2:
/// "aggressive stepping").
///
/// # Examples
///
/// ```
/// use robustify_core::AggressiveStepping;
///
/// let aggressive = AggressiveStepping::default();
/// assert!(aggressive.success_factor > 1.0 && aggressive.fail_factor < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggressiveStepping {
    /// Multiplier applied to the step size after a cost decrease.
    pub success_factor: f64,
    /// Multiplier applied after a cost increase (the move is rolled back).
    pub fail_factor: f64,
    /// The phase stops once the relative cost change between consecutive
    /// accepted steps falls below this threshold.
    pub rel_tolerance: f64,
    /// Upper bound on the number of adaptive steps.
    pub max_steps: usize,
}

impl Default for AggressiveStepping {
    fn default() -> Self {
        AggressiveStepping {
            success_factor: 1.2,
            fail_factor: 0.5,
            rel_tolerance: 1e-6,
            max_steps: 200,
        }
    }
}

/// Periodic scaling of a cost's penalty parameter (§6.2.4: "the parameter μ
/// is periodically increased as the solver moves closer towards the
/// minimum").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Annealing {
    /// Anneal every `period` iterations.
    pub period: usize,
    /// Factor by which `μ` grows at each annealing event.
    pub factor: f64,
}

impl Default for Annealing {
    fn default() -> Self {
        // A doubling every 1000 iterations: slow enough that the shrinking
        // step size keeps the penalized objective's growing curvature
        // stable at the paper's 1000–10000-iteration budgets.
        Annealing {
            period: 1000,
            factor: 2.0,
        }
    }
}

/// Control-plane sanitization applied to each noisy gradient before the
/// iterate update.
///
/// Theorem 1 requires the gradient noise to be unbiased with *bounded
/// variance*. A raw exponent-bit flip violates that — a single corrupted
/// FPU result can be astronomically large — so without some guard a fault
/// in almost any iteration destroys the iterate. The guard is the cheap
/// `O(d)` native-arithmetic step that restores the bounded-variance regime;
/// the paper folds this into its "control phases are protected" assumption,
/// and the `ablation_guard` experiment binary quantifies each policy's effect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GradientGuard {
    /// Use the gradient exactly as the FPU produced it.
    Off,
    /// Replace NaN/±∞ components with zero (skipping the corrupted lane).
    ZeroNonFinite,
    /// Zero non-finite components, then rescale the gradient if its
    /// Euclidean norm exceeds the bound.
    Clip {
        /// Maximum allowed gradient norm.
        max_norm: f64,
    },
    /// Zero non-finite components, then clamp each component's magnitude to
    /// a fixed bound (preserves the uncorrupted lanes, unlike norm
    /// rescaling).
    ClampComponents {
        /// Maximum allowed component magnitude.
        max_abs: f64,
    },
    /// Self-tuning outlier rejection plus component clamp. A running
    /// median-absolute-component scale `s` is maintained from accepted
    /// gradients; a gradient whose median magnitude exceeds `reject × s`
    /// is *rejected outright* (the iteration makes no move — a corrupted
    /// shared subexpression, e.g. one huge residual entry, poisons every
    /// lane coherently and no per-lane repair can save it). Accepted
    /// gradients update `s` and have each lane clamped to `factor × s`.
    ///
    /// Caveat: the scale bootstraps from the first gradient, so a solve
    /// started at a near-optimal iterate (tiny first gradient) can freeze.
    /// Prefer [`Clip`](GradientGuard::Clip) for warm-started problems.
    Adaptive {
        /// Clamp multiplier over the running scale estimate (default 10).
        factor: f64,
        /// Rejection multiplier over the running scale estimate
        /// (default 100).
        reject: f64,
    },
}

impl Default for GradientGuard {
    /// Norm clipping at 10 — the empirically strongest general policy for
    /// costs scaled to `O(1)` gradients, which every cost constructor in
    /// this workspace produces. Beyond the clip radius it behaves like
    /// normalized gradient descent: direction preserved, magnitude bounded.
    fn default() -> Self {
        GradientGuard::Clip { max_norm: 10.0 }
    }
}

impl GradientGuard {
    /// The default adaptive guard (`factor = 10`, `reject = 100`).
    pub fn default_adaptive() -> Self {
        GradientGuard::Adaptive {
            factor: 10.0,
            reject: 100.0,
        }
    }

    /// Applies the guard statelessly (the adaptive variant needs
    /// [`GuardState`]; through this entry point it behaves like a
    /// first-iteration application).
    pub fn apply(&self, grad: &mut [f64]) {
        GuardState::new(*self).apply(grad);
    }
}

/// Mutable state carried by a [`GradientGuard`] across iterations (the
/// running scale estimate of the adaptive variant).
#[derive(Debug, Clone, PartialEq)]
pub struct GuardState {
    guard: GradientGuard,
    /// Running median-absolute-component scale (adaptive variant only).
    scale: Option<f64>,
}

impl GuardState {
    /// Creates fresh state for a guard policy.
    pub fn new(guard: GradientGuard) -> Self {
        GuardState { guard, scale: None }
    }

    /// Applies the guard to `grad` in place (native arithmetic).
    pub fn apply(&mut self, grad: &mut [f64]) {
        match self.guard {
            GradientGuard::Off => {}
            GradientGuard::ZeroNonFinite => zero_non_finite(grad),
            GradientGuard::Clip { max_norm } => {
                zero_non_finite(grad);
                // detlint::allow(float-reassociation, reason = "gradient-guard norm is reliable control-plane arithmetic")
                // detlint::allow(fpu-routing, reason = "gradient-guard norm is reliable control-plane arithmetic")
                let norm = grad.iter().map(|g| g * g).sum::<f64>().sqrt();
                if norm > max_norm {
                    let s = max_norm / norm;
                    for g in grad.iter_mut() {
                        *g *= s;
                    }
                }
            }
            GradientGuard::ClampComponents { max_abs } => {
                zero_non_finite(grad);
                for g in grad.iter_mut() {
                    *g = g.clamp(-max_abs, max_abs);
                }
            }
            GradientGuard::Adaptive { factor, reject } => {
                zero_non_finite(grad);
                let med = median_abs(grad);
                let scale = match self.scale {
                    Some(s) => {
                        if med > reject * s {
                            // Coherently corrupted gradient: reject the whole
                            // step and leave the scale estimate untouched.
                            grad.fill(0.0);
                            return;
                        }
                        // detlint::allow(fpu-routing, reason = "guard smoothing is reliable control-plane arithmetic")
                        0.9 * s + 0.1 * med
                    }
                    None => med,
                };
                self.scale = Some(scale);
                if scale > 0.0 {
                    let bound = factor * scale;
                    for g in grad.iter_mut() {
                        *g = g.clamp(-bound, bound);
                    }
                }
            }
        }
    }

    /// The current adaptive scale estimate, if any.
    pub fn scale(&self) -> Option<f64> {
        self.scale
    }
}

fn zero_non_finite(grad: &mut [f64]) {
    for g in grad.iter_mut() {
        if !g.is_finite() {
            *g = 0.0;
        }
    }
}

/// Median of absolute values (native arithmetic; `0` for an empty slice).
///
/// Uses O(n) selection instead of a full sort — this runs once per
/// adaptive-guard iteration, which made the sort a measurable share of
/// SGD trial time. The returned value is identical to the sort-based
/// median: for even `n` the lower middle element is the maximum of the
/// partition left of the selected upper middle.
fn median_abs(v: &[f64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    let mut abs: Vec<f64> = v.iter().map(|x| x.abs()).collect();
    let n = abs.len();
    let (below, upper_mid, _) = abs.select_nth_unstable_by(n / 2, |a, b| {
        a.partial_cmp(b).expect("non-finite lanes were zeroed")
    });
    if n % 2 == 1 {
        *upper_mid
    } else {
        let lower_mid = below.iter().copied().fold(0.0f64, f64::max);
        // detlint::allow(fpu-routing, reason = "guard median midpoint is reliable control-plane arithmetic")
        0.5 * (lower_mid + *upper_mid)
    }
}

/// The outcome of a stochastic solve.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveReport {
    /// The final iterate.
    pub x: Vec<f64>,
    /// Total iterations executed (main loop + aggressive stepping).
    pub iterations: usize,
    /// Data-plane FLOPs charged to the provided FPU during the solve.
    pub flops: u64,
    /// Faults the FPU injected during the solve.
    pub faults: u64,
    /// Final cost, measured reliably.
    pub final_cost: f64,
    /// Optional convergence trace (reliable cost samples).
    pub trace: Option<Trace>,
}

/// Stochastic gradient descent configured with the paper's enhancements.
///
/// Construct with [`Sgd::new`], then chain the builder methods. The solver
/// is reusable: [`run`](Sgd::run) borrows it immutably.
///
/// # Examples
///
/// ```
/// use robustify_core::{Sgd, StepSchedule, QuadraticResidualCost};
/// use robustify_linalg::Matrix;
/// use stochastic_fpu::ReliableFpu;
///
/// # fn main() -> Result<(), robustify_core::CoreError> {
/// let mut cost = QuadraticResidualCost::new(Matrix::identity(2), vec![1.0, -1.0])?;
/// let sgd = Sgd::new(200, StepSchedule::Sqrt { gamma0: 0.4 })
///     .with_momentum(0.5)
///     .with_aggressive_stepping(Default::default());
/// let report = sgd.run(&mut cost, &[0.0, 0.0], &mut ReliableFpu::new());
/// assert!(report.final_cost < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Sgd {
    iterations: usize,
    schedule: StepSchedule,
    momentum: Option<f64>,
    aggressive: Option<AggressiveStepping>,
    annealing: Option<Annealing>,
    guard: GradientGuard,
    trace_stride: Option<usize>,
}

impl Sgd {
    /// Creates a solver running `iterations` main-loop steps with the given
    /// step-size schedule and the default gradient guard.
    pub fn new(iterations: usize, schedule: StepSchedule) -> Self {
        Sgd {
            iterations,
            schedule,
            momentum: None,
            aggressive: None,
            annealing: None,
            guard: GradientGuard::default(),
            trace_stride: None,
        }
    }

    /// Enables momentum smoothing `dₜ = β ∇f + (1−β) dₜ₋₁` (the paper uses
    /// `β = 0.5`).
    ///
    /// # Panics
    ///
    /// Panics if `beta` is outside `(0, 1]`.
    pub fn with_momentum(mut self, beta: f64) -> Self {
        assert!(
            beta > 0.0 && beta <= 1.0,
            "momentum β must be in (0, 1], got {beta}"
        );
        self.momentum = Some(beta);
        self
    }

    /// Appends an aggressive-stepping phase after the main loop.
    pub fn with_aggressive_stepping(mut self, config: AggressiveStepping) -> Self {
        self.aggressive = Some(config);
        self
    }

    /// Enables periodic penalty annealing (effective only for costs whose
    /// [`anneal`](CostFunction::anneal) is not a no-op).
    ///
    /// # Panics
    ///
    /// Panics if `config.period == 0` or `config.factor <= 1.0`.
    pub fn with_annealing(mut self, config: Annealing) -> Self {
        assert!(config.period > 0, "annealing period must be positive");
        assert!(config.factor > 1.0, "annealing factor must exceed 1.0");
        self.annealing = Some(config);
        self
    }

    /// Replaces the gradient guard.
    pub fn with_guard(mut self, guard: GradientGuard) -> Self {
        self.guard = guard;
        self
    }

    /// Records a reliable cost sample every `stride` iterations.
    pub fn with_trace(mut self, stride: usize) -> Self {
        self.trace_stride = Some(stride.max(1));
        self
    }

    /// Runs the solve from `x0`, evaluating gradients through `fpu`.
    ///
    /// The returned report's FLOP/fault counts are the *deltas* accrued on
    /// `fpu` during this call.
    ///
    /// # Panics
    ///
    /// Panics if `x0.len() != cost.dim()`.
    pub fn run<C: CostFunction, F: Fpu>(
        &self,
        cost: &mut C,
        x0: &[f64],
        fpu: &mut F,
    ) -> SolveReport {
        assert_eq!(
            x0.len(),
            cost.dim(),
            "initial iterate has the wrong dimension"
        );
        let snapshot = fpu.snapshot();
        let dim = cost.dim();
        let mut x = x0.to_vec();
        let mut grad = vec![0.0; dim];
        let mut direction = vec![0.0; dim];
        let mut trace = self.trace_stride.map(Trace::new);
        let mut measure = ReliableFpu::new();
        let mut guard = GuardState::new(self.guard);

        if let Some(tr) = &mut trace {
            tr.record(0, cost.cost(&x, &mut measure));
        }

        let mut executed = 0;
        for t in 1..=self.iterations {
            cost.gradient(&x, fpu, &mut grad);
            guard.apply(&mut grad);
            match self.momentum {
                Some(beta) => {
                    for (d, &g) in direction.iter_mut().zip(&grad) {
                        // detlint::allow(fpu-routing, reason = "the update step runs on the reliable processor per the paper's split")
                        *d = beta * g + (1.0 - beta) * *d;
                    }
                }
                None => direction.copy_from_slice(&grad),
            }
            let gamma = self.schedule.step(t);
            for (xi, &di) in x.iter_mut().zip(&direction) {
                *xi -= gamma * di;
            }
            if let Some(ann) = self.annealing {
                if t % ann.period == 0 {
                    cost.anneal(ann.factor);
                }
            }
            if let Some(tr) = &mut trace {
                if tr.due(t) {
                    tr.record(t, cost.cost(&x, &mut measure));
                }
            }
            executed = t;
        }

        if let Some(aggressive) = self.aggressive {
            executed += self.aggressive_phase(cost, &mut x, &mut grad, fpu, aggressive, &mut guard);
        }

        let final_cost = cost.cost(&x, &mut measure);
        if let Some(tr) = &mut trace {
            tr.record(executed, final_cost);
        }
        SolveReport {
            x,
            iterations: executed,
            flops: snapshot.flops_since(fpu),
            faults: snapshot.faults_since(fpu),
            final_cost,
            trace,
        }
    }

    /// The variable step-size phase: grow the step after each cost decrease,
    /// shrink it (and roll back) after each increase; stop when the relative
    /// change between consecutive evaluations falls below the tolerance.
    /// Cost evaluations here are control-plane (reliable); gradients remain
    /// noisy.
    fn aggressive_phase<C: CostFunction, F: Fpu>(
        &self,
        cost: &mut C,
        x: &mut Vec<f64>,
        grad: &mut [f64],
        fpu: &mut F,
        config: AggressiveStepping,
        guard: &mut GuardState,
    ) -> usize {
        let mut measure = ReliableFpu::new();
        let mut gamma = self.schedule.step(self.iterations.max(1));
        let mut f_current = cost.cost(x, &mut measure);
        let mut steps = 0;
        // The phase ends once progress stalls *repeatedly*: a single
        // sub-tolerance step right after entry (where γ is still the tiny
        // tail of the main schedule) must not abort the phase before the
        // success factor has had a chance to grow the step.
        let mut stall_streak = 0;
        for _ in 0..config.max_steps {
            cost.gradient(x, fpu, grad);
            guard.apply(grad);
            let candidate: Vec<f64> = x
                .iter()
                .zip(grad.iter())
                .map(|(xi, gi)| xi - gamma * gi)
                .collect();
            let f_candidate = cost.cost(&candidate, &mut measure);
            steps += 1;
            if f_candidate.is_finite() && f_candidate < f_current {
                let rel = (f_current - f_candidate).abs() / f_current.abs().max(1e-12);
                *x = candidate;
                f_current = f_candidate;
                gamma *= config.success_factor;
                if rel < config.rel_tolerance {
                    stall_streak += 1;
                    if stall_streak >= 5 {
                        break;
                    }
                } else {
                    stall_streak = 0;
                }
            } else {
                gamma *= config.fail_factor;
                if gamma < 1e-18 {
                    break;
                }
            }
        }
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{QuadraticCost, QuadraticResidualCost};
    use robustify_linalg::Matrix;
    use stochastic_fpu::{BitFaultModel, BitWidth, FaultRate, NoisyFpu};

    fn residual_cost() -> QuadraticResidualCost {
        // Minimum at x = (2, -1).
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]).expect("valid rows");
        let b = vec![2.0, -1.0, 1.0];
        QuadraticResidualCost::new(a, b).expect("consistent")
    }

    #[test]
    fn converges_on_reliable_fpu() {
        let mut cost = residual_cost();
        let report = Sgd::new(300, StepSchedule::Fixed(0.1)).run(
            &mut cost,
            &[0.0, 0.0],
            &mut ReliableFpu::new(),
        );
        assert!((report.x[0] - 2.0).abs() < 1e-6, "x = {:?}", report.x);
        assert!((report.x[1] + 1.0).abs() < 1e-6);
        assert!(report.final_cost < 1e-10);
        assert_eq!(report.iterations, 300);
        assert!(report.flops > 0);
        assert_eq!(report.faults, 0);
    }

    #[test]
    fn converges_under_low_order_faults() {
        // LSB-only faults keep the gradient noise bounded: Theorem 1 applies
        // and the solve should still land near the optimum.
        let mut cost = residual_cost();
        let mut fpu = NoisyFpu::new(
            FaultRate::per_flop(0.05),
            BitFaultModel::lsb_only(BitWidth::F64),
            3,
        );
        let report = Sgd::new(2000, StepSchedule::Linear { gamma0: 0.5 }).run(
            &mut cost,
            &[0.0, 0.0],
            &mut fpu,
        );
        assert!(report.faults > 0, "no faults were injected");
        assert!((report.x[0] - 2.0).abs() < 1e-2, "x = {:?}", report.x);
        assert!((report.x[1] + 1.0).abs() < 1e-2);
    }

    #[test]
    fn survives_exponent_faults_with_clip_guard() {
        let mut cost = residual_cost();
        let mut fpu = NoisyFpu::new(FaultRate::per_flop(0.01), BitFaultModel::emulated(), 17);
        let report = Sgd::new(3000, StepSchedule::Linear { gamma0: 0.5 })
            .with_guard(GradientGuard::Clip { max_norm: 1e3 })
            .run(&mut cost, &[0.0, 0.0], &mut fpu);
        assert!(report.x.iter().all(|v| v.is_finite()));
        assert!(
            (report.x[0] - 2.0).abs() < 0.5 && (report.x[1] + 1.0).abs() < 0.5,
            "x = {:?}",
            report.x
        );
    }

    #[test]
    fn momentum_still_converges() {
        let mut cost = residual_cost();
        let report = Sgd::new(500, StepSchedule::Fixed(0.05))
            .with_momentum(0.5)
            .run(&mut cost, &[0.0, 0.0], &mut ReliableFpu::new());
        assert!(report.final_cost < 1e-8);
    }

    #[test]
    fn aggressive_stepping_refines_the_solution() {
        let mut cost = residual_cost();
        let base = Sgd::new(20, StepSchedule::Linear { gamma0: 0.3 }).run(
            &mut cost,
            &[0.0, 0.0],
            &mut ReliableFpu::new(),
        );
        let mut cost2 = residual_cost();
        let with_as = Sgd::new(20, StepSchedule::Linear { gamma0: 0.3 })
            .with_aggressive_stepping(AggressiveStepping::default())
            .run(&mut cost2, &[0.0, 0.0], &mut ReliableFpu::new());
        assert!(
            with_as.final_cost <= base.final_cost,
            "AS {} vs base {}",
            with_as.final_cost,
            base.final_cost
        );
        assert!(with_as.iterations > base.iterations);
    }

    #[test]
    fn annealing_calls_cost_anneal() {
        use crate::penalty::{AffineConstraints, PenaltyCost, PenaltyKind};
        let ineq = AffineConstraints::new(
            Matrix::from_rows(&[&[1.0, 1.0]]).expect("valid rows"),
            vec![1.0],
        )
        .expect("consistent");
        let mut cost = PenaltyCost::new(
            crate::cost::LinearCost::new(vec![-1.0, -1.0]),
            1.0,
            PenaltyKind::Squared,
        )
        .expect("valid mu")
        .with_inequalities(ineq)
        .expect("dims match")
        .with_nonneg();
        let mu_before = cost.mu();
        Sgd::new(100, StepSchedule::Sqrt { gamma0: 0.1 })
            .with_annealing(Annealing {
                period: 10,
                factor: 2.0,
            })
            .run(&mut cost, &[0.0, 0.0], &mut ReliableFpu::new());
        assert_eq!(cost.mu(), mu_before * 2f64.powi(10));
    }

    #[test]
    fn trace_records_decreasing_costs() {
        let mut cost = residual_cost();
        let report = Sgd::new(100, StepSchedule::Fixed(0.1)).with_trace(10).run(
            &mut cost,
            &[0.0, 0.0],
            &mut ReliableFpu::new(),
        );
        let trace = report.trace.expect("trace was requested");
        assert!(trace.len() >= 10);
        let first = trace.entries()[0].1;
        let last = trace.last().expect("non-empty");
        assert!(last < first, "cost did not decrease: {first} -> {last}");
    }

    #[test]
    fn guard_zeroes_non_finite_components() {
        let mut g = vec![1.0, f64::NAN, f64::INFINITY, -2.0];
        GradientGuard::ZeroNonFinite.apply(&mut g);
        assert_eq!(g, vec![1.0, 0.0, 0.0, -2.0]);
    }

    #[test]
    fn guard_clips_norm() {
        let mut g = vec![30.0, 40.0]; // norm 50
        GradientGuard::Clip { max_norm: 5.0 }.apply(&mut g);
        let norm = (g[0] * g[0] + g[1] * g[1]).sqrt();
        assert!((norm - 5.0).abs() < 1e-12);
        assert!((g[0] / g[1] - 0.75).abs() < 1e-12, "direction preserved");
    }

    #[test]
    fn guard_off_is_identity() {
        let mut g = vec![f64::NAN, 1e300];
        GradientGuard::Off.apply(&mut g);
        assert!(g[0].is_nan());
        assert_eq!(g[1], 1e300);
    }

    #[test]
    #[should_panic(expected = "wrong dimension")]
    fn run_rejects_bad_x0() {
        let mut cost = residual_cost();
        Sgd::new(1, StepSchedule::Fixed(0.1)).run(&mut cost, &[0.0], &mut ReliableFpu::new());
    }

    #[test]
    #[should_panic(expected = "momentum")]
    fn invalid_momentum_panics() {
        Sgd::new(1, StepSchedule::Fixed(0.1)).with_momentum(1.5);
    }

    #[test]
    #[should_panic(expected = "annealing factor")]
    fn invalid_annealing_panics() {
        Sgd::new(1, StepSchedule::Fixed(0.1)).with_annealing(Annealing {
            period: 5,
            factor: 1.0,
        });
    }

    #[test]
    fn strongly_convex_rate_improves_with_iterations() {
        // Theorem 1 sanity: for a strongly convex quadratic under bounded
        // noise, E[f(x_T) - f*] shrinks as T grows.
        let q = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 2.0]]).expect("valid rows");
        let mean_gap = |iters: usize| -> f64 {
            let mut total = 0.0;
            let runs = 20;
            for seed in 0..runs {
                let mut cost = QuadraticCost::new(q.clone(), vec![2.0, -2.0]).expect("consistent");
                let mut fpu = NoisyFpu::new(
                    FaultRate::per_flop(0.05),
                    BitFaultModel::lsb_only(BitWidth::F64),
                    seed,
                );
                let report = Sgd::new(iters, StepSchedule::Linear { gamma0: 0.9 }).run(
                    &mut cost,
                    &[5.0, 5.0],
                    &mut fpu,
                );
                // f* = -b'Q^{-1}b/2 = -(1+1) = -2 for this system.
                total += report.final_cost - (-2.0);
            }
            total / runs as f64
        };
        let short = mean_gap(30);
        let long = mean_gap(1000);
        assert!(long < short, "gap did not shrink: {short} -> {long}");
        assert!(long < 1e-3, "long-run gap {long} too large");
    }
}
