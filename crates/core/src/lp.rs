//! Linear programs: the generic combinatorial engine.
//!
//! The paper observes that "a host of other combinatorial problems can be
//! solved exactly on stochastic processors by reduction to linear
//! programming" and that the approach "is quite generic, since linear
//! programming, which is P-complete, can be implemented this way" (§4.7).
//! [`LinearProgram`] is that reduction target: sorting (§4.3), bipartite
//! matching (§4.4), max-flow (§4.5) and all-pairs shortest paths (§4.6) all
//! build one of these and hand it to [`Sgd`](crate::Sgd) through
//! [`LinearProgram::penalized`].

use crate::cost::LinearCost;
use crate::error::CoreError;
use crate::penalty::{AffineConstraints, PenaltyCost, PenaltyKind};
use robustify_linalg::Matrix;

/// A linear program `minimize cᵀx` subject to `A x ≤ b`, `E x = d`, and
/// optionally `x ≥ 0`.
///
/// # Examples
///
/// ```
/// use robustify_core::{LinearProgram, PenaltyKind};
/// use robustify_linalg::Matrix;
///
/// # fn main() -> Result<(), robustify_core::CoreError> {
/// // maximize x0 + x1 on the simplex { x ≥ 0, x0 + x1 ≤ 1 }.
/// let lp = LinearProgram::minimize(vec![-1.0, -1.0])
///     .with_upper_bounds(Matrix::from_rows(&[&[1.0, 1.0]])?, vec![1.0])?
///     .with_nonneg();
/// let cost = lp.penalized(50.0, PenaltyKind::Squared)?;
/// # let _ = cost;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearProgram {
    c: Vec<f64>,
    upper: Option<(Matrix, Vec<f64>)>,
    eq: Option<(Matrix, Vec<f64>)>,
    nonneg: bool,
}

impl LinearProgram {
    /// Starts a program minimizing `cᵀ x`.
    ///
    /// To *maximize* an objective, negate it (as the paper does for sorting
    /// and matching).
    pub fn minimize(c: Vec<f64>) -> Self {
        LinearProgram {
            c,
            upper: None,
            eq: None,
            nonneg: false,
        }
    }

    /// Adds inequality constraints `A x ≤ b`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] if the shapes are
    /// inconsistent with the objective.
    pub fn with_upper_bounds(mut self, a: Matrix, b: Vec<f64>) -> Result<Self, CoreError> {
        check_block(&self.c, &a, &b)?;
        self.upper = Some((a, b));
        Ok(self)
    }

    /// Adds equality constraints `E x = d`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] if the shapes are
    /// inconsistent with the objective.
    pub fn with_equalities(mut self, e: Matrix, d: Vec<f64>) -> Result<Self, CoreError> {
        check_block(&self.c, &e, &d)?;
        self.eq = Some((e, d));
        Ok(self)
    }

    /// Constrains all variables to be non-negative.
    pub fn with_nonneg(mut self) -> Self {
        self.nonneg = true;
        self
    }

    /// Number of variables.
    pub fn dim(&self) -> usize {
        self.c.len()
    }

    /// The objective vector `c`.
    pub fn objective(&self) -> &[f64] {
        &self.c
    }

    /// The inequality block `(A, b)`, if any.
    pub fn upper_bounds(&self) -> Option<(&Matrix, &[f64])> {
        self.upper.as_ref().map(|(a, b)| (a, b.as_slice()))
    }

    /// The equality block `(E, d)`, if any.
    pub fn equalities(&self) -> Option<(&Matrix, &[f64])> {
        self.eq.as_ref().map(|(e, d)| (e, d.as_slice()))
    }

    /// Whether variables are constrained non-negative.
    pub fn is_nonneg(&self) -> bool {
        self.nonneg
    }

    /// Converts to the unconstrained exact-penalty cost of Theorem 2, ready
    /// for a stochastic solver.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if `mu` is not positive and
    /// finite.
    pub fn penalized(
        &self,
        mu: f64,
        kind: PenaltyKind,
    ) -> Result<PenaltyCost<LinearCost>, CoreError> {
        let mut cost = PenaltyCost::new(LinearCost::new(self.c.clone()), mu, kind)?;
        if let Some((a, b)) = &self.upper {
            cost = cost.with_inequalities(AffineConstraints::new(a.clone(), b.clone())?)?;
        }
        if let Some((e, d)) = &self.eq {
            cost = cost.with_equalities(AffineConstraints::new(e.clone(), d.clone())?)?;
        }
        if self.nonneg {
            cost = cost.with_nonneg();
        }
        Ok(cost)
    }

    /// Objective value `cᵀ x` with native arithmetic (a measurement).
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        // detlint::allow(float-reassociation, reason = "objective measurement is documented native verification arithmetic")
        self.c.iter().zip(x).map(|(c, x)| c * x).sum()
    }

    /// Total constraint violation of `x` with native arithmetic.
    pub fn violation(&self, x: &[f64]) -> f64 {
        let mut total = 0.0;
        if let Some((a, b)) = &self.upper {
            for (i, bi) in b.iter().enumerate() {
                // detlint::allow(float-reassociation, reason = "feasibility measurement is documented native verification arithmetic")
                let row: f64 = a.row(i).iter().zip(x).map(|(aij, xj)| aij * xj).sum();
                total += (row - bi).max(0.0);
            }
        }
        if let Some((e, d)) = &self.eq {
            for (i, di) in d.iter().enumerate() {
                // detlint::allow(float-reassociation, reason = "feasibility measurement is documented native verification arithmetic")
                let row: f64 = e.row(i).iter().zip(x).map(|(eij, xj)| eij * xj).sum();
                total += (row - di).abs();
            }
        }
        if self.nonneg {
            // detlint::allow(float-reassociation, reason = "feasibility measurement is documented native verification arithmetic")
            total += x.iter().map(|&v| (-v).max(0.0)).sum::<f64>();
        }
        total
    }
}

fn check_block(c: &[f64], m: &Matrix, rhs: &[f64]) -> Result<(), CoreError> {
    if m.cols() != c.len() {
        return Err(CoreError::shape(
            format!("constraints on {} variables", c.len()),
            format!("{} columns", m.cols()),
        ));
    }
    if rhs.len() != m.rows() {
        return Err(CoreError::shape(
            format!("rhs of length {}", m.rows()),
            format!("length {}", rhs.len()),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostFunction;
    use stochastic_fpu::ReliableFpu;

    fn simplex_lp() -> LinearProgram {
        LinearProgram::minimize(vec![-2.0, -1.0])
            .with_upper_bounds(
                Matrix::from_rows(&[&[1.0, 1.0]]).expect("valid rows"),
                vec![1.0],
            )
            .expect("consistent")
            .with_nonneg()
    }

    #[test]
    fn accessors_roundtrip() {
        let lp = simplex_lp();
        assert_eq!(lp.dim(), 2);
        assert_eq!(lp.objective(), &[-2.0, -1.0]);
        assert!(lp.upper_bounds().is_some());
        assert!(lp.equalities().is_none());
        assert!(lp.is_nonneg());
    }

    #[test]
    fn penalized_cost_matches_manual_evaluation() {
        let lp = simplex_lp();
        let cost = lp.penalized(10.0, PenaltyKind::Abs).expect("valid mu");
        let mut fpu = ReliableFpu::new();
        // Feasible vertex (1, 0): objective -2, no penalty.
        assert_eq!(cost.cost(&[1.0, 0.0], &mut fpu), -2.0);
        // Infeasible (2, 0): objective -4 + μ·(violation 1).
        assert_eq!(cost.cost(&[2.0, 0.0], &mut fpu), -4.0 + 10.0);
    }

    #[test]
    fn objective_and_violation_measurements() {
        let lp = simplex_lp();
        assert_eq!(lp.objective_value(&[1.0, 0.0]), -2.0);
        assert_eq!(lp.violation(&[1.0, 0.0]), 0.0);
        assert_eq!(lp.violation(&[2.0, -1.0]), 1.0); // -x1 = 1 over nonneg; sum row = 1 ≤ 1 ok
    }

    #[test]
    fn violation_includes_equalities() {
        let lp = LinearProgram::minimize(vec![1.0, 1.0])
            .with_equalities(
                Matrix::from_rows(&[&[1.0, -1.0]]).expect("valid rows"),
                vec![0.5],
            )
            .expect("consistent");
        assert_eq!(lp.violation(&[1.0, 1.0]), 0.5);
        assert_eq!(lp.violation(&[1.5, 1.0]), 0.0);
    }

    #[test]
    fn shape_validation() {
        let lp = LinearProgram::minimize(vec![1.0, 2.0]);
        assert!(lp
            .clone()
            .with_upper_bounds(Matrix::identity(3), vec![0.0; 3])
            .is_err());
        assert!(lp
            .clone()
            .with_upper_bounds(Matrix::identity(2), vec![0.0; 3])
            .is_err());
        assert!(lp.with_equalities(Matrix::zeros(1, 3), vec![0.0]).is_err());
    }

    #[test]
    fn penalized_rejects_bad_mu() {
        assert!(simplex_lp().penalized(-1.0, PenaltyKind::Abs).is_err());
    }
}
