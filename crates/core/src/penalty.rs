//! The exact penalty transform (the paper's Theorem 2).
//!
//! A constrained program
//!
//! ```text
//! minimize f(x)   s.t.   g(x) ≤ 0,   h(x) = 0
//! ```
//!
//! with affine `g` and `h` is converted into the unconstrained form
//!
//! ```text
//! f(x) + μ Σᵢ |hᵢ(x)| + μ Σⱼ [gⱼ(x)]₊
//! ```
//!
//! which, for sufficiently large `μ`, has the *same* minimizer (Bertsekas,
//! Prop. 5.5.2 — the paper's Theorem 2). A squared-hinge variant
//! `f + μ Σ hᵢ² + μ Σ [gⱼ]₊²` is also provided, matching the quadratic
//! penalties the paper uses for sorting (eq. 4.4).

use crate::cost::CostFunction;
use crate::error::CoreError;
use robustify_linalg::Matrix;
use stochastic_fpu::Fpu;

/// The functional form of constraint-violation penalties.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PenaltyKind {
    /// L1 exact penalty: `|h|` and `[g]₊` (Theorem 2's form).
    Abs,
    /// Squared hinge: `h²` and `[g]₊²` (the paper's eq. 4.4 form; smooth,
    /// but exact only in the limit `μ → ∞`).
    #[default]
    Squared,
}

/// A block of affine constraint rows `A x − b` (interpreted as `≤ 0` or
/// `= 0` depending on where it is attached).
///
/// # Examples
///
/// ```
/// use robustify_core::AffineConstraints;
/// use robustify_linalg::Matrix;
/// use stochastic_fpu::ReliableFpu;
///
/// # fn main() -> Result<(), robustify_core::CoreError> {
/// // x0 + x1 ≤ 1 encoded as [1 1]·x − 1.
/// let c = AffineConstraints::new(Matrix::from_rows(&[&[1.0, 1.0]])?, vec![1.0])?;
/// let r = c.evaluate(&[0.25, 0.25], &mut ReliableFpu::new());
/// assert_eq!(r, vec![-0.5]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AffineConstraints {
    a: Matrix,
    b: Vec<f64>,
}

impl AffineConstraints {
    /// Creates the constraint block `A x − b`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] if `b.len() != a.rows()`.
    pub fn new(a: Matrix, b: Vec<f64>) -> Result<Self, CoreError> {
        if b.len() != a.rows() {
            return Err(CoreError::shape(
                format!("b of length {}", a.rows()),
                format!("length {}", b.len()),
            ));
        }
        Ok(AffineConstraints { a, b })
    }

    /// Number of constraint rows.
    pub fn len(&self) -> usize {
        self.a.rows()
    }

    /// Whether the block has no rows (never true for a constructed value,
    /// since [`Matrix`] dimensions are positive).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of variables the rows act on.
    pub fn dim(&self) -> usize {
        self.a.cols()
    }

    /// The coefficient matrix `A`.
    pub fn matrix(&self) -> &Matrix {
        &self.a
    }

    /// The offsets `b`.
    pub fn rhs(&self) -> &[f64] {
        &self.b
    }

    /// Evaluates all rows `A x − b` through the FPU.
    pub fn evaluate<F: Fpu>(&self, x: &[f64], fpu: &mut F) -> Vec<f64> {
        let mut r = self.a.matvec(fpu, x).expect("x has dim() entries");
        fpu.sub_assign_batch(&self.b, &mut r);
        r
    }

    /// Adds `coef × aᵢ` to `grad` for row `i`, through the FPU.
    ///
    /// Batched per maximal run of non-zero row entries
    /// ([`for_nonzero_runs`](robustify_linalg::for_nonzero_runs)), which
    /// preserves the historical per-entry zero skip — and with it the FLOP
    /// sequence — exactly.
    fn accumulate_row<F: Fpu>(&self, i: usize, coef: f64, fpu: &mut F, grad: &mut [f64]) {
        if coef == 0.0 {
            return;
        }
        let row = self.a.row(i);
        robustify_linalg::for_nonzero_runs(row, |start, end| {
            fpu.axpy_batch(coef, &row[start..end], &mut grad[start..end]);
        });
    }
}

/// The unconstrained exact-penalty form of a constrained program.
///
/// Wraps an objective with optional equality rows (`E x − d = 0`),
/// inequality rows (`A x − b ≤ 0`) and non-negativity (`x ≥ 0`), weighting
/// violations by an annealable penalty parameter `μ`.
///
/// # Examples
///
/// ```
/// use robustify_core::{AffineConstraints, CostFunction, LinearCost, PenaltyCost, PenaltyKind};
/// use robustify_linalg::Matrix;
/// use stochastic_fpu::ReliableFpu;
///
/// # fn main() -> Result<(), robustify_core::CoreError> {
/// // minimize -x0 subject to x0 ≤ 1: penalized cost -x0 + μ[x0 − 1]₊.
/// let ineq = AffineConstraints::new(Matrix::from_rows(&[&[1.0]])?, vec![1.0])?;
/// let cost = PenaltyCost::new(LinearCost::new(vec![-1.0]), 10.0, PenaltyKind::Abs)?
///     .with_inequalities(ineq)?;
/// let mut fpu = ReliableFpu::new();
/// assert_eq!(cost.cost(&[2.0], &mut fpu), -2.0 + 10.0);
/// assert_eq!(cost.cost(&[0.5], &mut fpu), -0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PenaltyCost<C> {
    objective: C,
    eq: Option<AffineConstraints>,
    ineq: Option<AffineConstraints>,
    nonneg: bool,
    mu: f64,
    kind: PenaltyKind,
}

impl<C: CostFunction> PenaltyCost<C> {
    /// Wraps `objective` with penalty weight `mu` and the given penalty
    /// form. Constraints are attached with the `with_*` builder methods.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if `mu` is not positive and
    /// finite.
    pub fn new(objective: C, mu: f64, kind: PenaltyKind) -> Result<Self, CoreError> {
        if !mu.is_finite() || mu <= 0.0 {
            return Err(CoreError::invalid_config(format!(
                "penalty parameter must be positive and finite, got {mu}"
            )));
        }
        Ok(PenaltyCost {
            objective,
            eq: None,
            ineq: None,
            nonneg: false,
            mu,
            kind,
        })
    }

    /// Attaches equality rows `E x − d = 0`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] if the rows act on a
    /// different number of variables than the objective.
    pub fn with_equalities(mut self, eq: AffineConstraints) -> Result<Self, CoreError> {
        if eq.dim() != self.objective.dim() {
            return Err(CoreError::shape(
                format!("constraints on {} variables", self.objective.dim()),
                format!("{} variables", eq.dim()),
            ));
        }
        self.eq = Some(eq);
        Ok(self)
    }

    /// Attaches inequality rows `A x − b ≤ 0`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] if the rows act on a
    /// different number of variables than the objective.
    pub fn with_inequalities(mut self, ineq: AffineConstraints) -> Result<Self, CoreError> {
        if ineq.dim() != self.objective.dim() {
            return Err(CoreError::shape(
                format!("constraints on {} variables", self.objective.dim()),
                format!("{} variables", ineq.dim()),
            ));
        }
        self.ineq = Some(ineq);
        Ok(self)
    }

    /// Additionally penalizes negative coordinates (`x ≥ 0`), without
    /// materializing an identity constraint block.
    pub fn with_nonneg(mut self) -> Self {
        self.nonneg = true;
        self
    }

    /// The current penalty parameter `μ`.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Replaces the penalty parameter.
    ///
    /// # Panics
    ///
    /// Panics if `mu` is not positive and finite.
    pub fn set_mu(&mut self, mu: f64) {
        assert!(
            mu > 0.0 && mu.is_finite(),
            "penalty parameter must be positive, got {mu}"
        );
        self.mu = mu;
    }

    /// The penalty form in use.
    pub fn kind(&self) -> PenaltyKind {
        self.kind
    }

    /// The wrapped objective.
    pub fn objective(&self) -> &C {
        &self.objective
    }

    /// Total constraint violation `Σ|hᵢ| + Σ[gⱼ]₊ + Σ[−xₖ]₊`, measured with
    /// native arithmetic (a diagnostic, not part of the solve).
    pub fn violation(&self, x: &[f64]) -> f64 {
        let mut fpu = stochastic_fpu::ReliableFpu::new();
        let mut total = 0.0;
        if let Some(eq) = &self.eq {
            total += eq
                .evaluate(x, &mut fpu)
                .iter()
                .map(|h| h.abs())
                // detlint::allow(float-reassociation, reason = "penalty measurement is reliable verification arithmetic")
                .sum::<f64>();
        }
        if let Some(ineq) = &self.ineq {
            total += ineq
                .evaluate(x, &mut fpu)
                .iter()
                .map(|g| g.max(0.0))
                // detlint::allow(float-reassociation, reason = "penalty measurement is reliable verification arithmetic")
                .sum::<f64>();
        }
        if self.nonneg {
            // detlint::allow(float-reassociation, reason = "penalty measurement is reliable verification arithmetic")
            total += x.iter().map(|&v| (-v).max(0.0)).sum::<f64>();
        }
        total
    }

    /// Whether `x` satisfies every constraint within `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        self.violation(x) <= tol
    }

    fn penalty_value<F: Fpu>(&self, violation: f64, fpu: &mut F) -> f64 {
        match self.kind {
            PenaltyKind::Abs => violation.abs(),
            PenaltyKind::Squared => fpu.mul(violation, violation),
        }
    }

    /// The derivative of the penalty term w.r.t. the (positive-part)
    /// violation value, used as the row coefficient in the subgradient.
    fn penalty_slope(&self, violation: f64) -> f64 {
        match self.kind {
            PenaltyKind::Abs => violation.signum(),
            // detlint::allow(fpu-routing, reason = "penalty subgradient scale runs on the reliable control plane")
            PenaltyKind::Squared => 2.0 * violation,
        }
    }
}

impl<C: CostFunction> CostFunction for PenaltyCost<C> {
    fn dim(&self) -> usize {
        self.objective.dim()
    }

    fn cost<F: Fpu>(&self, x: &[f64], fpu: &mut F) -> f64 {
        let mut total = self.objective.cost(x, fpu);
        let mut penalty = 0.0;
        if let Some(eq) = &self.eq {
            for h in eq.evaluate(x, fpu) {
                let p = self.penalty_value(h, fpu);
                penalty = fpu.add(penalty, p);
            }
        }
        if let Some(ineq) = &self.ineq {
            for g in ineq.evaluate(x, fpu) {
                let gplus = g.max(0.0);
                let p = self.penalty_value(gplus, fpu);
                penalty = fpu.add(penalty, p);
            }
        }
        if self.nonneg {
            for &v in x {
                let neg = (-v).max(0.0);
                let p = self.penalty_value(neg, fpu);
                penalty = fpu.add(penalty, p);
            }
        }
        let weighted = fpu.mul(self.mu, penalty);
        total = fpu.add(total, weighted);
        total
    }

    fn gradient<F: Fpu>(&self, x: &[f64], fpu: &mut F, grad: &mut [f64]) {
        self.objective.gradient(x, fpu, grad);
        if let Some(eq) = &self.eq {
            let h = eq.evaluate(x, fpu);
            for (i, &hi) in h.iter().enumerate() {
                let coef = fpu.mul(self.mu, self.penalty_slope(hi));
                eq.accumulate_row(i, coef, fpu, grad);
            }
        }
        if let Some(ineq) = &self.ineq {
            let g = ineq.evaluate(x, fpu);
            for (i, &gi) in g.iter().enumerate() {
                if gi > 0.0 {
                    let coef = fpu.mul(self.mu, self.penalty_slope(gi));
                    ineq.accumulate_row(i, coef, fpu, grad);
                }
            }
        }
        if self.nonneg {
            for (gk, &xk) in grad.iter_mut().zip(x) {
                if xk < 0.0 {
                    // d/dx μ·pen([−x]₊) = −μ·slope(−x)
                    let slope = self.penalty_slope(-xk);
                    let coef = fpu.mul(self.mu, slope);
                    *gk = fpu.sub(*gk, coef);
                }
            }
        }
    }

    fn anneal(&mut self, factor: f64) {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "anneal factor must be positive"
        );
        // Saturate: beyond this the penalty Hessian swamps every step size
        // and the parameter would eventually overflow.
        self.mu = (self.mu * factor).min(1e9);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::LinearCost;
    use crate::test_util::check_gradient;
    use stochastic_fpu::ReliableFpu;

    fn simple_lp_cost(kind: PenaltyKind, mu: f64) -> PenaltyCost<LinearCost> {
        // minimize -x0 - x1 s.t. x0 + x1 ≤ 1, x0 - x1 = 0, x ≥ 0.
        let ineq = AffineConstraints::new(
            Matrix::from_rows(&[&[1.0, 1.0]]).expect("valid rows"),
            vec![1.0],
        )
        .expect("consistent");
        let eq = AffineConstraints::new(
            Matrix::from_rows(&[&[1.0, -1.0]]).expect("valid rows"),
            vec![0.0],
        )
        .expect("consistent");
        PenaltyCost::new(LinearCost::new(vec![-1.0, -1.0]), mu, kind)
            .expect("valid mu")
            .with_inequalities(ineq)
            .expect("dims match")
            .with_equalities(eq)
            .expect("dims match")
            .with_nonneg()
    }

    #[test]
    fn feasible_point_has_no_penalty() {
        for kind in [PenaltyKind::Abs, PenaltyKind::Squared] {
            let cost = simple_lp_cost(kind, 100.0);
            let mut fpu = ReliableFpu::new();
            // x = (0.5, 0.5) is feasible; cost should be exactly cᵀx = -1.
            assert_eq!(cost.cost(&[0.5, 0.5], &mut fpu), -1.0);
            assert!(cost.is_feasible(&[0.5, 0.5], 1e-12));
        }
    }

    #[test]
    fn violations_are_penalized() {
        let cost = simple_lp_cost(PenaltyKind::Abs, 10.0);
        let mut fpu = ReliableFpu::new();
        // x = (1, 1): ineq violated by 1, eq satisfied, nonneg satisfied.
        assert_eq!(cost.cost(&[1.0, 1.0], &mut fpu), -2.0 + 10.0);
        // x = (-1, -1): ineq fine (-3 ≤ 0), eq fine, two nonneg violations.
        assert_eq!(cost.cost(&[-1.0, -1.0], &mut fpu), 2.0 + 20.0);
        assert!((cost.violation(&[-1.0, -1.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn squared_penalty_is_quadratic_in_violation() {
        let cost = simple_lp_cost(PenaltyKind::Squared, 10.0);
        let mut fpu = ReliableFpu::new();
        // ineq violated by 1 -> 10·1²; by 3 -> 10·9.
        assert_eq!(cost.cost(&[1.0, 1.0], &mut fpu), -2.0 + 10.0);
        assert_eq!(cost.cost(&[2.0, 2.0], &mut fpu), -4.0 + 90.0);
    }

    #[test]
    fn gradient_matches_finite_difference_squared() {
        let cost = simple_lp_cost(PenaltyKind::Squared, 7.0);
        // Points chosen away from hinge kinks.
        check_gradient(&cost, &[1.5, 0.3]);
        check_gradient(&cost, &[-0.4, 0.9]);
        check_gradient(&cost, &[0.2, 0.1]);
    }

    #[test]
    fn gradient_matches_finite_difference_abs() {
        let cost = simple_lp_cost(PenaltyKind::Abs, 7.0);
        // Differentiable wherever no constraint is exactly active.
        check_gradient(&cost, &[1.5, 0.3]);
        check_gradient(&cost, &[0.2, 0.1]);
    }

    #[test]
    fn exact_penalty_theorem_holds_for_large_mu() {
        // minimize -x on [0, 1]: optimum x* = 1. With μ > 1 the Abs penalty
        // form has its global minimum at exactly x* (Theorem 2).
        let ineq =
            AffineConstraints::new(Matrix::from_rows(&[&[1.0]]).expect("valid rows"), vec![1.0])
                .expect("consistent");
        let cost = PenaltyCost::new(LinearCost::new(vec![-1.0]), 5.0, PenaltyKind::Abs)
            .expect("valid mu")
            .with_inequalities(ineq)
            .expect("dims match")
            .with_nonneg();
        let mut fpu = ReliableFpu::new();
        let f_star = cost.cost(&[1.0], &mut fpu);
        for &x in &[-0.5, 0.0, 0.25, 0.5, 0.75, 0.99, 1.01, 1.5, 2.0] {
            assert!(
                cost.cost(&[x], &mut fpu) >= f_star - 1e-12,
                "penalized cost at {x} below constrained optimum"
            );
        }
    }

    #[test]
    fn anneal_scales_mu() {
        let mut cost = simple_lp_cost(PenaltyKind::Squared, 2.0);
        cost.anneal(3.0);
        assert_eq!(cost.mu(), 6.0);
        cost.set_mu(1.0);
        assert_eq!(cost.mu(), 1.0);
    }

    #[test]
    fn invalid_mu_is_rejected() {
        assert!(PenaltyCost::new(LinearCost::new(vec![1.0]), 0.0, PenaltyKind::Abs).is_err());
        assert!(PenaltyCost::new(LinearCost::new(vec![1.0]), -1.0, PenaltyKind::Abs).is_err());
        assert!(
            PenaltyCost::new(LinearCost::new(vec![1.0]), f64::INFINITY, PenaltyKind::Abs).is_err()
        );
    }

    #[test]
    fn mismatched_constraint_dims_rejected() {
        let eq = AffineConstraints::new(Matrix::identity(3), vec![0.0; 3]).expect("consistent");
        let result = PenaltyCost::new(LinearCost::new(vec![1.0, 1.0]), 1.0, PenaltyKind::Abs)
            .expect("valid mu")
            .with_equalities(eq);
        assert!(result.is_err());
    }

    #[test]
    fn affine_constraints_validate_shapes() {
        assert!(AffineConstraints::new(Matrix::identity(2), vec![0.0]).is_err());
        let c = AffineConstraints::new(Matrix::identity(2), vec![0.0; 2]).expect("consistent");
        assert_eq!(c.len(), 2);
        assert_eq!(c.dim(), 2);
        assert!(!c.is_empty());
    }
}
