//! Convergence traces recorded during a solve.

/// A record of (reliably measured) cost values along an optimization run.
///
/// Costs are evaluated with an exact FPU purely for observability — they do
/// not influence the solve and are not charged to the data-plane FLOP
/// budget.
///
/// # Examples
///
/// ```
/// use robustify_core::Trace;
///
/// let mut trace = Trace::new(2);
/// trace.record(0, 10.0);
/// trace.record(2, 4.0);
/// assert_eq!(trace.best(), Some(4.0));
/// assert_eq!(trace.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    stride: usize,
    entries: Vec<(usize, f64)>,
}

impl Trace {
    /// Creates a trace that intends to record every `stride` iterations
    /// (`stride` is advisory; [`record`](Self::record) accepts any point).
    pub fn new(stride: usize) -> Self {
        Trace {
            stride: stride.max(1),
            entries: Vec::new(),
        }
    }

    /// The recording stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Whether iteration `t` falls on the recording stride.
    pub fn due(&self, t: usize) -> bool {
        t.is_multiple_of(self.stride)
    }

    /// Appends a `(iteration, cost)` sample.
    pub fn record(&mut self, iteration: usize, cost: f64) {
        self.entries.push((iteration, cost));
    }

    /// The recorded `(iteration, cost)` samples in order.
    pub fn entries(&self) -> &[(usize, f64)] {
        &self.entries
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The lowest recorded cost.
    pub fn best(&self) -> Option<f64> {
        self.entries
            .iter()
            .map(|&(_, c)| c)
            .fold(None, |acc, c| match acc {
                Some(b) if b <= c || c.is_nan() => Some(b),
                _ if c.is_nan() => acc,
                _ => Some(c),
            })
    }

    /// The last recorded cost.
    pub fn last(&self) -> Option<f64> {
        self.entries.last().map(|&(_, c)| c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_is_at_least_one() {
        assert_eq!(Trace::new(0).stride(), 1);
        assert!(Trace::new(1).due(7));
        let t = Trace::new(5);
        assert!(t.due(10));
        assert!(!t.due(11));
    }

    #[test]
    fn best_ignores_nan() {
        let mut t = Trace::new(1);
        t.record(0, 5.0);
        t.record(1, 3.0);
        t.record(2, f64::NAN);
        assert_eq!(t.best(), Some(3.0));
        assert!(t.last().expect("non-empty").is_nan());
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new(1);
        assert!(t.is_empty());
        assert_eq!(t.best(), None);
        assert_eq!(t.last(), None);
    }

    #[test]
    fn entries_preserve_order() {
        let mut t = Trace::new(1);
        t.record(0, 2.0);
        t.record(10, 1.0);
        assert_eq!(t.entries(), &[(0, 2.0), (10, 1.0)]);
        assert_eq!(t.len(), 2);
    }
}
