//! Conjugate gradient least squares with noisy-gradient restarts (§3.3).
//!
//! For least squares the problem structure "can be exploited to construct
//! better search directions and step sizes": conjugate gradient converges in
//! at most `n` iterations on a reliable processor, and its behaviour under
//! inexact (noisy) gradients is well understood. "To reduce the effect of
//! noisy gradients, our implementation of CG resets the search direction
//! after every few iterations" — reproduced here via
//! [`CgLeastSquares::with_restart_interval`].
//!
//! The implementation is CGLS (conjugate gradient on the normal equations,
//! applied implicitly): the matrix–vector products `A p` and `Aᵀ r` — the
//! bulk of the computation, i.e. the *gradient work* — run through the
//! caller's FPU, while the scalar recurrences (`α`, `β`) and the iterate
//! updates are control-plane, matching the paper's protection assumption.

use crate::error::CoreError;
use crate::trace::Trace;
use robustify_linalg::{LinearOperator, Matrix};
use stochastic_fpu::{Fpu, FpuExt, ReliableFpu};

/// The outcome of a conjugate gradient solve.
#[derive(Debug, Clone, PartialEq)]
pub struct CgReport {
    /// The final iterate.
    pub x: Vec<f64>,
    /// Iterations executed.
    pub iterations: usize,
    /// Times the search direction was reset (beyond the initial one).
    pub restarts: usize,
    /// Data-plane FLOPs charged to the provided FPU.
    pub flops: u64,
    /// Faults injected during the solve.
    pub faults: u64,
    /// Final residual cost `‖A x − b‖²`, measured reliably.
    pub final_cost: f64,
    /// Reliable residual-cost samples, one per iteration.
    pub trace: Trace,
}

/// Conjugate gradient for `min ‖A x − b‖²` on a stochastic processor.
///
/// Generic over the matrix backend: the solver only needs the
/// [`LinearOperator`] products `A p` and `Aᵀ r`, so the same code runs
/// dense ([`Matrix`], the default) or sparse
/// ([`CsrMatrix`](robustify_linalg::CsrMatrix)) without change.
///
/// # Examples
///
/// ```
/// use robustify_core::CgLeastSquares;
/// use robustify_linalg::Matrix;
/// use stochastic_fpu::ReliableFpu;
///
/// # fn main() -> Result<(), robustify_core::CoreError> {
/// let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]])?;
/// let solver = CgLeastSquares::new(&a, &[2.0, 2.0, 3.0])?;
/// let report = solver.solve(&[0.0, 0.0], &mut ReliableFpu::new());
/// assert!(report.final_cost < 1e-12); // consistent system solved exactly
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CgLeastSquares<'a, M: LinearOperator = Matrix> {
    a: &'a M,
    b: &'a [f64],
    max_iterations: usize,
    restart_interval: Option<usize>,
    tolerance: f64,
    /// Inverse Jacobi preconditioner `M⁻¹ = diag(AᵀA)⁻¹`, applied on the
    /// control plane. `None` leaves the recurrence untouched bit-for-bit.
    inv_precond: Option<Vec<f64>>,
}

impl<'a, M: LinearOperator> CgLeastSquares<'a, M> {
    /// Creates a solver for the system `(A, b)` with the default budget of
    /// `A.cols()` iterations (the exact-arithmetic convergence bound), no
    /// restarts, and tolerance `1e-24` on `‖Aᵀr‖²`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] if `b.len() != a.rows()`.
    pub fn new(a: &'a M, b: &'a [f64]) -> Result<Self, CoreError> {
        if b.len() != a.rows() {
            return Err(CoreError::shape(
                format!("rhs of length {}", a.rows()),
                format!("length {}", b.len()),
            ));
        }
        Ok(CgLeastSquares {
            a,
            b,
            max_iterations: a.cols(),
            restart_interval: None,
            tolerance: 1e-24,
            inv_precond: None,
        })
    }

    /// Enables the Jacobi (diagonal) preconditioner from the diagonal of
    /// the normal matrix, `normal_diagonal[j] = (AᵀA)ⱼⱼ = Σᵢ aᵢⱼ²` —
    /// [`CsrMatrix::normal_diagonal`](robustify_linalg::CsrMatrix::normal_diagonal)
    /// computes it for sparse systems.
    ///
    /// Each restart and update then preconditions the gradient,
    /// `z = M⁻¹ s`, searches along `z`, and measures progress by
    /// `γ = sᵀ z` instead of `‖s‖²` — on badly column-scaled systems this
    /// undoes the scaling and recovers the well-conditioned iteration
    /// count. The division happens once here; per-iteration application
    /// is `n` control-plane multiplies, consistent with the scalar
    /// recurrences (the data-plane FLOP stream of `A p` / `Aᵀ r` is
    /// unchanged). Non-positive or non-finite diagonal entries (empty
    /// columns) fall back to `1.0`, i.e. unpreconditioned on that
    /// coordinate. The [`with_tolerance`](Self::with_tolerance) threshold
    /// then applies to `sᵀ M⁻¹ s`, which matches `‖Aᵀ r‖²` only up to the
    /// diagonal scale.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] if
    /// `normal_diagonal.len() != A.cols()`.
    pub fn with_jacobi_preconditioner(
        mut self,
        normal_diagonal: &[f64],
    ) -> Result<Self, CoreError> {
        if normal_diagonal.len() != self.a.cols() {
            return Err(CoreError::shape(
                format!("normal diagonal of length {}", self.a.cols()),
                format!("length {}", normal_diagonal.len()),
            ));
        }
        self.inv_precond = Some(
            normal_diagonal
                .iter()
                .map(|&d| {
                    if d.is_finite() && d > 0.0 {
                        // detlint::allow(fpu-routing, reason = "one-time control-plane inversion of the preconditioner diagonal")
                        1.0 / d
                    } else {
                        1.0
                    }
                })
                .collect(),
        );
        Ok(self)
    }

    /// Sets the iteration budget (the paper's Figure 6.6 uses `N = 10`).
    pub fn with_max_iterations(mut self, n: usize) -> Self {
        self.max_iterations = n;
        self
    }

    /// Resets the search direction to steepest descent every `interval`
    /// iterations, the paper's mitigation for noisy gradients.
    ///
    /// # Panics
    ///
    /// Panics if `interval == 0`.
    pub fn with_restart_interval(mut self, interval: usize) -> Self {
        assert!(interval > 0, "restart interval must be positive");
        self.restart_interval = Some(interval);
        self
    }

    /// Sets the stopping tolerance on `‖Aᵀ r‖²`.
    pub fn with_tolerance(mut self, tol: f64) -> Self {
        self.tolerance = tol;
        self
    }

    /// Runs CGLS from `x0`, routing matrix–vector products through `fpu`.
    ///
    /// # Panics
    ///
    /// Panics if `x0.len() != A.cols()`.
    pub fn solve<F: Fpu>(&self, x0: &[f64], fpu: &mut F) -> CgReport {
        let n = self.a.cols();
        assert_eq!(x0.len(), n, "initial iterate has the wrong dimension");
        let snapshot = fpu.snapshot();
        let mut measure = ReliableFpu::new();
        let mut trace = Trace::new(1);

        let mut x = x0.to_vec();
        let (mut r, mut p, mut gamma) = self.restart_state(&x, fpu);
        trace.record(0, self.reliable_cost(&x, &mut measure));

        let mut iterations = 0;
        let mut restarts = 0;
        for t in 1..=self.max_iterations {
            if gamma <= self.tolerance {
                break;
            }
            // q = A p (data plane).
            let q = self.a.matvec(fpu, &p).expect("p has n entries");
            // detlint::allow(float-reassociation, reason = "reliable scalar control plane of robust CGLS (see ARCHITECTURE.md)")
            let qtq: f64 = q.iter().map(|v| v * v).sum();
            if !qtq.is_finite() || qtq <= 0.0 {
                // Degenerate or corrupted direction: restart from steepest
                // descent (control-plane decision).
                let state = self.restart_state(&x, fpu);
                r = state.0;
                p = state.1;
                gamma = state.2;
                restarts += 1;
                iterations = t;
                continue;
            }
            let alpha = gamma / qtq;
            // Control-plane magnitude check: a corrupted product can make
            // `alpha·p` enormous while still finite, after which no later
            // step recovers. Reject any move far beyond the iterate's own
            // scale and restart from steepest descent instead.
            // detlint::allow(fpu-routing, reason = "step-rejection guard is reliable control-plane arithmetic")
            let x_scale = 1.0 + x.iter().fold(0.0f64, |m, v| m.max(v.abs()));
            let step_too_large = !alpha.is_finite()
                || p.iter()
                    // detlint::allow(fpu-routing, reason = "step-rejection guard is reliable control-plane arithmetic")
                    .any(|&pi| !(alpha * pi).is_finite() || (alpha * pi).abs() > 1e6 * x_scale);
            if step_too_large {
                let state = self.restart_state(&x, fpu);
                r = state.0;
                p = state.1;
                gamma = state.2;
                restarts += 1;
                iterations = t;
                continue;
            }
            for (xi, &pi) in x.iter_mut().zip(&p) {
                *xi += alpha * pi;
            }
            for (ri, &qi) in r.iter_mut().zip(&q) {
                *ri -= alpha * qi;
            }
            // s = Aᵀ r (data plane): the gradient of ½‖Ax − b‖² up to sign.
            let mut s = self.a.matvec_t(fpu, &r).expect("r has rows() entries");
            sanitize(&mut s);
            let (z, gamma_new) = self.precondition(s);
            let forced_restart = self.restart_interval.map(|k| t % k == 0).unwrap_or(false);
            if forced_restart {
                // Steepest-descent reset: p = z.
                p.copy_from_slice(&z);
                restarts += 1;
            } else {
                let beta = if gamma > 0.0 { gamma_new / gamma } else { 0.0 };
                for (pi, &zi) in p.iter_mut().zip(&z) {
                    *pi = zi + beta * *pi;
                }
            }
            gamma = gamma_new;
            iterations = t;
            trace.record(t, self.reliable_cost(&x, &mut measure));
        }

        let final_cost = self.reliable_cost(&x, &mut measure);
        CgReport {
            x,
            iterations,
            restarts,
            flops: snapshot.flops_since(fpu),
            faults: snapshot.faults_since(fpu),
            final_cost,
            trace,
        }
    }

    /// Computes the steepest-descent restart state `(r, p, γ)` at `x`,
    /// with `p = z = M⁻¹ s` and `γ = sᵀ z` when preconditioned.
    fn restart_state<F: Fpu>(&self, x: &[f64], fpu: &mut F) -> (Vec<f64>, Vec<f64>, f64) {
        let ax = self.a.matvec(fpu, x).expect("x has n entries");
        let mut r: Vec<f64> = self.b.iter().zip(&ax).map(|(&bi, &axi)| bi - axi).collect();
        sanitize(&mut r);
        let mut s = self.a.matvec_t(fpu, &r).expect("r has rows() entries");
        sanitize(&mut s);
        let (z, gamma) = self.precondition(s);
        (r, z, gamma)
    }

    /// Control-plane preconditioning `(z, γ) = (M⁻¹ s, sᵀ z)`. Without a
    /// preconditioner, `s` passes through untouched with `γ = ‖s‖²` —
    /// bit-identical to the unpreconditioned recurrence.
    fn precondition(&self, s: Vec<f64>) -> (Vec<f64>, f64) {
        match &self.inv_precond {
            None => {
                // detlint::allow(float-reassociation, reason = "reliable scalar control plane of robust CGLS (see ARCHITECTURE.md)")
                let gamma: f64 = s.iter().map(|v| v * v).sum();
                (s, gamma)
            }
            Some(inv) => {
                let z: Vec<f64> = s.iter().zip(inv).map(|(&si, &mi)| si * mi).collect();
                // detlint::allow(float-reassociation, reason = "reliable scalar control plane of robust CGLS (see ARCHITECTURE.md)")
                let gamma: f64 = s.iter().zip(&z).map(|(&si, &zi)| si * zi).sum();
                (z, gamma)
            }
        }
    }

    fn reliable_cost(&self, x: &[f64], measure: &mut ReliableFpu) -> f64 {
        let ax = self.a.matvec(measure, x).expect("x has n entries");
        let r: Vec<f64> = self.b.iter().zip(&ax).map(|(&bi, &axi)| bi - axi).collect();
        robustify_linalg::norm2_sq(measure, &r)
    }
}

/// Control-plane sanitization: zero out non-finite lanes so one corrupted
/// product cannot poison every later recurrence.
fn sanitize(v: &mut [f64]) {
    for vi in v {
        if !vi.is_finite() {
            *vi = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robustify_linalg::lstsq_qr;
    use stochastic_fpu::{BitFaultModel, BitWidth, FaultRate, NoisyFpu};

    fn tall_system() -> (Matrix, Vec<f64>) {
        let a = Matrix::from_rows(&[
            &[2.0, -1.0, 0.5],
            &[1.0, 3.0, -2.0],
            &[0.0, 1.0, 1.0],
            &[4.0, 0.0, 2.0],
            &[-1.0, 2.0, 0.0],
        ])
        .expect("valid rows");
        (a, vec![1.0, 0.0, 2.0, -1.0, 3.0])
    }

    #[test]
    fn converges_in_n_iterations_reliable() {
        let (a, b) = tall_system();
        let solver = CgLeastSquares::new(&a, &b).expect("consistent");
        let report = solver.solve(&[0.0; 3], &mut ReliableFpu::new());
        let mut fpu = ReliableFpu::new();
        let x_qr = lstsq_qr(&mut fpu, &a, &b).expect("full rank");
        for (c, q) in report.x.iter().zip(&x_qr) {
            assert!((c - q).abs() < 1e-8, "cg {c} vs qr {q}");
        }
        assert!(report.iterations <= 3);
    }

    #[test]
    fn trace_is_monotone_decreasing_reliable() {
        let (a, b) = tall_system();
        let solver = CgLeastSquares::new(&a, &b).expect("consistent");
        let report = solver.solve(&[0.0; 3], &mut ReliableFpu::new());
        let costs: Vec<f64> = report.trace.entries().iter().map(|&(_, c)| c).collect();
        for w in costs.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "cost increased: {:?}", costs);
        }
    }

    #[test]
    fn tolerates_low_order_noise() {
        let (a, b) = tall_system();
        let solver = CgLeastSquares::new(&a, &b)
            .expect("consistent")
            .with_max_iterations(10)
            .with_restart_interval(3);
        let mut fpu = NoisyFpu::new(
            FaultRate::per_flop(0.01),
            BitFaultModel::lsb_only(BitWidth::F64),
            5,
        );
        let report = solver.solve(&[0.0; 3], &mut fpu);
        let mut rf = ReliableFpu::new();
        let x_ref = lstsq_qr(&mut rf, &a, &b).expect("full rank");
        let ref_cost = {
            let ax = a.matvec(&mut rf, &x_ref).expect("shapes match");
            let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, ai)| bi - ai).collect();
            robustify_linalg::norm2_sq(&mut rf, &r)
        };
        assert!(
            report.final_cost < ref_cost + 1e-2,
            "noisy CG cost {} vs reference {}",
            report.final_cost,
            ref_cost
        );
    }

    #[test]
    fn restart_interval_forces_restarts() {
        let (a, b) = tall_system();
        let solver = CgLeastSquares::new(&a, &b)
            .expect("consistent")
            .with_max_iterations(9)
            .with_tolerance(0.0)
            .with_restart_interval(2);
        let report = solver.solve(&[0.0; 3], &mut ReliableFpu::new());
        assert!(report.restarts >= 3, "restarts = {}", report.restarts);
    }

    #[test]
    fn terminates_under_heavy_faults() {
        let (a, b) = tall_system();
        for seed in 0..10 {
            let solver = CgLeastSquares::new(&a, &b)
                .expect("consistent")
                .with_max_iterations(10)
                .with_restart_interval(3);
            let mut fpu = NoisyFpu::new(FaultRate::per_flop(0.3), BitFaultModel::emulated(), seed);
            let report = solver.solve(&[0.0; 3], &mut fpu);
            assert!(report.x.iter().all(|v| v.is_finite()), "iterate corrupted");
        }
    }

    #[test]
    fn shape_validation() {
        let (a, _) = tall_system();
        assert!(CgLeastSquares::new(&a, &[1.0]).is_err());
    }

    #[test]
    fn identity_preconditioner_is_bitwise_unpreconditioned() {
        let (a, b) = tall_system();
        // diag = 1 inverts to 1, so z = s·1 reproduces s exactly; the whole
        // report (iterates, trace, FLOP/fault counters) must be identical,
        // fault schedule included.
        for seed in [0, 5, 11] {
            let solve = |jacobi: bool| {
                let mut solver = CgLeastSquares::new(&a, &b)
                    .expect("consistent")
                    .with_max_iterations(10)
                    .with_restart_interval(3);
                if jacobi {
                    solver = solver
                        .with_jacobi_preconditioner(&[1.0; 3])
                        .expect("length matches");
                }
                let mut fpu =
                    NoisyFpu::new(FaultRate::per_flop(0.05), BitFaultModel::emulated(), seed);
                solver.solve(&[0.0; 3], &mut fpu)
            };
            assert_eq!(solve(false), solve(true), "seed {seed}");
        }
    }

    #[test]
    fn jacobi_preconditioner_requires_matching_length() {
        let (a, b) = tall_system();
        let solver = CgLeastSquares::new(&a, &b).expect("consistent");
        assert!(solver
            .clone()
            .with_jacobi_preconditioner(&[1.0; 2])
            .is_err());
        assert!(solver.with_jacobi_preconditioner(&[1.0; 3]).is_ok());
    }

    #[test]
    fn jacobi_preconditioner_handles_degenerate_diagonal() {
        let (a, b) = tall_system();
        // Zero / non-finite entries fall back to identity on that
        // coordinate instead of poisoning the search direction.
        let solver = CgLeastSquares::new(&a, &b)
            .expect("consistent")
            .with_jacobi_preconditioner(&[0.0, f64::NAN, 4.0])
            .expect("length matches");
        let report = solver.solve(&[0.0; 3], &mut ReliableFpu::new());
        assert!(report.x.iter().all(|v| v.is_finite()));
        assert!(report.final_cost.is_finite());
    }

    #[test]
    #[should_panic(expected = "wrong dimension")]
    fn solve_rejects_bad_x0() {
        let (a, b) = tall_system();
        let solver = CgLeastSquares::new(&a, &b).expect("consistent");
        solver.solve(&[0.0; 2], &mut ReliableFpu::new());
    }

    #[test]
    fn flops_are_charged_to_caller_fpu() {
        let (a, b) = tall_system();
        let solver = CgLeastSquares::new(&a, &b).expect("consistent");
        let mut fpu = ReliableFpu::new();
        let report = solver.solve(&[0.0; 3], &mut fpu);
        assert_eq!(report.flops, fpu.flops());
        assert!(report.flops > 0);
    }
}
