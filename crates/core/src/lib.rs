//! Application robustification by numerical optimization — the core
//! framework of the DSN 2010 paper *"A Numerical Optimization-Based
//! Methodology for Application Robustification"*.
//!
//! The methodology: recast an application as the minimization of a cost
//! function `f` whose minimum encodes the application's output, then solve
//! it with an optimizer that provably tolerates *unbiased* gradient noise —
//! here, noise injected by a fault-prone FPU rather than by data
//! subsampling. Constrained forms are mechanically converted to
//! unconstrained ones by an exact penalty transform (the paper's Theorem 2).
//!
//! The pieces:
//!
//! * [`RobustProblem`] / [`SolverSpec`] — the unified experiment interface:
//!   every application is a cost + decode + verify triple, every solver
//!   configuration is declarative data, so any pairing can be swept by the
//!   `robustify_engine` executor without bespoke harness code. The
//!   injector side of a trial is declarative too: a [`FaultModelSpec`]
//!   (re-exported from `stochastic_fpu`) describes *which hardware
//!   scenario* corrupts the [`Fpu`](stochastic_fpu::Fpu) a trial runs on —
//!   the paper's transient bit flip, stuck-at bits, bursts, operand
//!   corruption, intermittent and op-selective faults — so sweep grids
//!   pair every `(problem, solver)` with every scenario.
//! * [`CostFunction`] — the variational interface; gradients are evaluated
//!   through an [`Fpu`](stochastic_fpu::Fpu) (the noisy *data plane*), while
//!   solver bookkeeping stays native (the protected *control plane*).
//! * [`PenaltyCost`] / [`AffineConstraints`] — exact penalty transform with
//!   L1 (Theorem 2) and squared-hinge penalty forms and annealable `μ`.
//! * [`LinearProgram`] — the generic combinatorial engine: sorting,
//!   matching, max-flow and shortest paths all reduce to LPs (§4.3–4.7).
//! * [`Sgd`] — stochastic (sub)gradient descent with the paper's step-size
//!   schedules (`1/t`, `1/√t`, fixed), aggressive stepping, momentum,
//!   and penalty annealing (§3.2, §6.2).
//! * [`CgLeastSquares`] — conjugate gradient with periodic direction resets
//!   for noisy gradients (§3.3, §6.3).
//! * [`precondition_lp`] — QR preconditioning of ill-conditioned LPs
//!   (§6.2.1).
//!
//! # Quickstart: a robust least squares solve
//!
//! ```
//! use robustify_core::{Sgd, StepSchedule, QuadraticResidualCost};
//! use robustify_linalg::Matrix;
//! use stochastic_fpu::{BitFaultModel, FaultRate, NoisyFpu};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // f(x) = ||Ax - b||^2 for A = I, b = [3, 4]: minimum at x = b.
//! let a = Matrix::identity(2);
//! let mut cost = QuadraticResidualCost::new(a, vec![3.0, 4.0])?;
//! let mut fpu = NoisyFpu::new(FaultRate::per_flop(0.001), BitFaultModel::emulated(), 1);
//! let report = Sgd::new(500, StepSchedule::Fixed(0.2)).run(&mut cost, &[0.0, 0.0], &mut fpu);
//! assert!((report.x[0] - 3.0).abs() < 0.1);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod cg;
mod cost;
mod error;
mod lp;
mod penalty;
mod precondition;
mod problem;
mod schedule;
mod sgd;
#[cfg(test)]
pub(crate) mod test_util;
mod trace;
mod workload;

pub use cg::{CgLeastSquares, CgReport};
pub use cost::{CostFunction, LinearCost, QuadraticCost, QuadraticResidualCost};
pub use error::CoreError;
pub use lp::LinearProgram;
pub use penalty::{AffineConstraints, PenaltyCost, PenaltyKind};
pub use precondition::{precondition_lp, PreconditionedLp};
pub use problem::{default_solve, RobustOutcome, RobustProblem, SolveMethod, SolverSpec, Verdict};
pub use schedule::StepSchedule;
pub use sgd::{AggressiveStepping, Annealing, GradientGuard, GuardState, Sgd, SolveReport};
pub use trace::Trace;
pub use workload::{DynProblem, ProblemFactory, SolverFactory, WorkloadRegistry};

// The injector-side vocabulary of a trial, re-exported so problem and
// sweep authors can describe the full (problem × fault model × solver)
// experiment from one crate — including the voltage-linked (DVFS) and
// memory-persistent scenario families.
pub use stochastic_fpu::{
    DvfsStep, FaultCtx, FaultModel, FaultModelSpec, MemoryFaultKind, MemoryFaultModel,
    VoltageErrorModel,
};
