//! Step-size schedules (§3.2, §6.2.3 of the paper).

/// How the SGD step size `γₜ` evolves with the iteration count `t`
/// (1-based).
///
/// The paper evaluates *linear scaling* `γ₀/t` (their "LS"; optimal-rate for
/// strongly convex objectives per Theorem 1), *sqrt scaling* `γ₀/√t` (their
/// "SQS"; the convex-case schedule that "allows the step size to remain
/// larger while still causing it to continuously decrease"), and fixed
/// steps.
///
/// # Examples
///
/// ```
/// use robustify_core::StepSchedule;
///
/// assert_eq!(StepSchedule::Fixed(0.5).step(10), 0.5);
/// assert_eq!(StepSchedule::Linear { gamma0: 1.0 }.step(4), 0.25);
/// assert_eq!(StepSchedule::Sqrt { gamma0: 1.0 }.step(4), 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StepSchedule {
    /// Constant step size `γ₀`.
    Fixed(f64),
    /// Linear scaling `γ₀ / t` — the paper's "LS".
    Linear {
        /// Initial step size `γ₀`.
        gamma0: f64,
    },
    /// Square-root scaling `γ₀ / √t` — the paper's "SQS".
    Sqrt {
        /// Initial step size `γ₀`.
        gamma0: f64,
    },
}

impl StepSchedule {
    /// The step size at 1-based iteration `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t == 0`.
    pub fn step(&self, t: usize) -> f64 {
        assert!(t > 0, "iterations are 1-based");
        match *self {
            StepSchedule::Fixed(g) => g,
            StepSchedule::Linear { gamma0 } => gamma0 / t as f64,
            // detlint::allow(fpu-routing, reason = "step-size schedule runs on the reliable control plane")
            StepSchedule::Sqrt { gamma0 } => gamma0 / (t as f64).sqrt(),
        }
    }

    /// The initial step size `γ₀`.
    pub fn gamma0(&self) -> f64 {
        match *self {
            StepSchedule::Fixed(g) => g,
            StepSchedule::Linear { gamma0 } | StepSchedule::Sqrt { gamma0 } => gamma0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_decrease_monotonically() {
        for sched in [
            StepSchedule::Linear { gamma0: 2.0 },
            StepSchedule::Sqrt { gamma0: 2.0 },
        ] {
            let mut prev = f64::INFINITY;
            for t in 1..100 {
                let g = sched.step(t);
                assert!(g > 0.0 && g < prev, "{sched:?} at t={t}");
                prev = g;
            }
        }
    }

    #[test]
    fn sqrt_decays_slower_than_linear() {
        let ls = StepSchedule::Linear { gamma0: 1.0 };
        let sqs = StepSchedule::Sqrt { gamma0: 1.0 };
        for t in 2..1000 {
            assert!(sqs.step(t) > ls.step(t));
        }
    }

    #[test]
    fn fixed_never_decays() {
        let f = StepSchedule::Fixed(0.3);
        assert_eq!(f.step(1), f.step(1_000_000));
    }

    #[test]
    fn gamma0_accessor() {
        assert_eq!(StepSchedule::Fixed(0.1).gamma0(), 0.1);
        assert_eq!(StepSchedule::Linear { gamma0: 0.2 }.gamma0(), 0.2);
        assert_eq!(StepSchedule::Sqrt { gamma0: 0.3 }.gamma0(), 0.3);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zero_iteration_panics() {
        StepSchedule::Fixed(1.0).step(0);
    }
}
