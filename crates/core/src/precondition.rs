//! QR preconditioning of linear programs (§6.2.1).
//!
//! "Preconditioning allows us to rewrite the cost function so that gradient
//! descent is solving an easier problem." Given the LP `min cᵀx s.t. Ax ≤ b`
//! with `A = QR`, substitute `y = R x`:
//!
//! ```text
//! min c_newᵀ y   s.t.   Q y ≤ b,      where Rᵀ c_new = c
//! ```
//!
//! `Q` has orthonormal columns, so the constraint geometry seen by the
//! solver is perfectly conditioned; the original solution is recovered by
//! the triangular solve `R x = y`.
//!
//! The one-time QR setup and the final recovery are control-plane
//! (reliable) operations, consistent with the paper's protected-phases
//! assumption; the per-iteration gradient work on the transformed program
//! still flows through the noisy FPU.

use crate::error::CoreError;
use crate::lp::LinearProgram;
use robustify_linalg::{solve_upper, Matrix, QrFactorization};
use stochastic_fpu::ReliableFpu;

/// A linear program rewritten in preconditioned coordinates, plus the data
/// to map solutions back.
///
/// # Examples
///
/// ```
/// use robustify_core::{precondition_lp, LinearProgram};
/// use robustify_linalg::Matrix;
///
/// # fn main() -> Result<(), robustify_core::CoreError> {
/// let lp = LinearProgram::minimize(vec![-1.0, -1.0])
///     .with_upper_bounds(
///         Matrix::from_rows(&[&[100.0, 0.0], &[0.0, 0.01], &[-1.0, 0.0], &[0.0, -1.0]])?,
///         vec![100.0, 0.01, 0.0, 0.0],
///     )?;
/// let pre = precondition_lp(&lp)?;
/// let y = vec![0.0; 2]; // solve the preconditioned LP for y, then:
/// let x = pre.recover(&y)?;
/// assert_eq!(x.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PreconditionedLp {
    lp: LinearProgram,
    r: Matrix,
}

impl PreconditionedLp {
    /// The preconditioned program over `y = R x`.
    pub fn lp(&self) -> &LinearProgram {
        &self.lp
    }

    /// The triangular change-of-variables factor `R`.
    pub fn r(&self) -> &Matrix {
        &self.r
    }

    /// Maps a solution `y` of the preconditioned program back to the
    /// original variables by solving `R x = y` (control plane).
    ///
    /// # Errors
    ///
    /// * [`CoreError::DimensionMismatch`] if `y` has the wrong length.
    /// * [`CoreError::Linalg`] if `R` is singular.
    pub fn recover(&self, y: &[f64]) -> Result<Vec<f64>, CoreError> {
        if y.len() != self.r.rows() {
            return Err(CoreError::shape(
                format!("y of length {}", self.r.rows()),
                format!("length {}", y.len()),
            ));
        }
        Ok(solve_upper(&mut ReliableFpu::new(), &self.r, y)?)
    }
}

/// Preconditions `lp` by the QR factorization of its stacked constraint
/// matrix (inequality rows, then equality rows, then `−I` rows for
/// non-negativity).
///
/// The setup runs reliably (it is a one-time control-plane transformation).
///
/// # Errors
///
/// * [`CoreError::InvalidConfig`] if the program has no constraints (there
///   is nothing to precondition).
/// * [`CoreError::Linalg`] if the stacked constraint matrix is rank
///   deficient in its columns (QR breakdown).
pub fn precondition_lp(lp: &LinearProgram) -> Result<PreconditionedLp, CoreError> {
    let n = lp.dim();
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut rhs: Vec<f64> = Vec::new();
    let mut eq_range = 0..0;
    if let Some((a, b)) = lp.upper_bounds() {
        for (i, &bi) in b.iter().enumerate() {
            rows.push(a.row(i).to_vec());
            rhs.push(bi);
        }
    }
    if let Some((e, d)) = lp.equalities() {
        let start = rows.len();
        for (i, &di) in d.iter().enumerate() {
            rows.push(e.row(i).to_vec());
            rhs.push(di);
        }
        eq_range = start..rows.len();
    }
    if lp.is_nonneg() {
        for j in 0..n {
            let mut row = vec![0.0; n];
            row[j] = -1.0;
            rows.push(row);
            rhs.push(0.0);
        }
    }
    if rows.is_empty() {
        return Err(CoreError::invalid_config(
            "cannot precondition a program with no constraints",
        ));
    }
    if rows.len() < n {
        return Err(CoreError::invalid_config(format!(
            "need at least {n} stacked constraint rows to precondition, have {}",
            rows.len()
        )));
    }

    let stacked = Matrix::from_fn(rows.len(), n, |i, j| rows[i][j]);
    let mut fpu = ReliableFpu::new();
    let qr = QrFactorization::compute(&mut fpu, &stacked)?;
    let (q, r) = qr.into_parts();
    // Guard against rank deficiency: tiny pivots make recovery meaningless.
    let max_pivot = (0..n).map(|i| r[(i, i)].abs()).fold(0.0, f64::max);
    // detlint::allow(fpu-routing, reason = "rank-deficiency guard is reliable control-plane arithmetic")
    if (0..n).any(|i| r[(i, i)].abs() <= 1e-12 * max_pivot) {
        return Err(CoreError::Linalg(robustify_linalg::LinalgError::Singular));
    }

    // c_new solves Rᵀ c_new = c (lower-triangular system).
    let c_new = robustify_linalg::solve_lower(&mut fpu, &r.transpose(), lp.objective())?;

    // Rebuild the program over y: objective c_new, constraints Q y ≤/= rhs.
    // Row i of Q corresponds to the original row i of the stack.
    let mut new_lp = LinearProgram::minimize(c_new);
    let ineq_rows: Vec<usize> = (0..q.rows()).filter(|i| !eq_range.contains(i)).collect();
    if !ineq_rows.is_empty() {
        let a = Matrix::from_fn(ineq_rows.len(), n, |i, j| q[(ineq_rows[i], j)]);
        let b: Vec<f64> = ineq_rows.iter().map(|&i| rhs[i]).collect();
        new_lp = new_lp.with_upper_bounds(a, b)?;
    }
    if !eq_range.is_empty() {
        let rows: Vec<usize> = eq_range.clone().collect();
        let e = Matrix::from_fn(rows.len(), n, |i, j| q[(rows[i], j)]);
        let d: Vec<f64> = rows.iter().map(|&i| rhs[i]).collect();
        new_lp = new_lp.with_equalities(e, d)?;
    }
    Ok(PreconditionedLp { lp: new_lp, r })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::penalty::PenaltyKind;
    use crate::schedule::StepSchedule;
    use crate::sgd::Sgd;
    use stochastic_fpu::Fpu;

    /// An ill-conditioned box LP: max x0 + x1 on [0, 1] × [0, 5], with the
    /// two constraint rows scaled 100× apart.
    fn ill_conditioned_lp() -> LinearProgram {
        LinearProgram::minimize(vec![-1.0, -1.0])
            .with_upper_bounds(
                Matrix::from_rows(&[&[10.0, 0.0], &[0.0, 0.1]]).expect("valid rows"),
                vec![10.0, 0.5],
            )
            .expect("consistent")
            .with_nonneg()
    }

    #[test]
    fn preconditioned_solution_maps_back() {
        let lp = ill_conditioned_lp();
        let pre = precondition_lp(&lp).expect("constrained LP");
        // Solve the preconditioned program with plain SGD (reliable FPU).
        // The L1 penalty is exact (Theorem 2), so the minimizer sits on the
        // vertex rather than O(1/mu) outside it; the step size is large
        // because preconditioning shrinks the objective gradient by the
        // constraint scale it removed.
        let mut cost = pre
            .lp()
            .penalized(20.0, PenaltyKind::Abs)
            .expect("valid mu");
        let report = Sgd::new(40_000, StepSchedule::Sqrt { gamma0: 0.5 })
            .with_guard(crate::sgd::GradientGuard::Off)
            .run(
                &mut cost,
                &[0.0; 2],
                &mut stochastic_fpu::ReliableFpu::new(),
            );
        let x = pre.recover(&report.x).expect("R nonsingular");
        // True optimum of the original LP: x = (1, 5).
        assert!((x[0] - 1.0).abs() < 0.2, "x = {x:?}");
        assert!((x[1] - 5.0).abs() < 0.5, "x = {x:?}");
    }

    #[test]
    fn preconditioned_constraints_are_well_scaled() {
        let lp = ill_conditioned_lp();
        let pre = precondition_lp(&lp).expect("constrained LP");
        let (a, _) = pre.lp().upper_bounds().expect("has inequalities");
        // Columns of the stacked Q are orthonormal: every column norm is 1.
        let mut fpu = stochastic_fpu::ReliableFpu::new();
        for j in 0..a.cols() {
            let col = a.col(j);
            let n = robustify_linalg::norm2(&mut fpu, &col);
            assert!((n - 1.0).abs() < 1e-10, "column {j} norm {n}");
        }
    }

    #[test]
    fn equality_rows_are_preserved_as_equalities() {
        let lp = LinearProgram::minimize(vec![1.0, 2.0])
            .with_upper_bounds(Matrix::identity(2), vec![1.0, 1.0])
            .expect("consistent")
            .with_equalities(
                Matrix::from_rows(&[&[1.0, -1.0]]).expect("valid rows"),
                vec![0.0],
            )
            .expect("consistent");
        let pre = precondition_lp(&lp).expect("constrained LP");
        assert!(pre.lp().equalities().is_some());
        let (e, _) = pre.lp().equalities().expect("preserved");
        assert_eq!(e.rows(), 1);
        let (a, _) = pre.lp().upper_bounds().expect("preserved");
        assert_eq!(a.rows(), 2);
        assert!(!pre.lp().is_nonneg(), "nonneg was folded into rows");
    }

    #[test]
    fn recover_validates_shape() {
        let pre = precondition_lp(&ill_conditioned_lp()).expect("constrained LP");
        assert!(pre.recover(&[1.0]).is_err());
        assert!(pre.recover(&[0.5, 0.5]).is_ok());
    }

    #[test]
    fn unconstrained_program_is_rejected() {
        let lp = LinearProgram::minimize(vec![1.0]);
        assert!(matches!(
            precondition_lp(&lp),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn recover_solves_rx_equals_y() {
        let lp = ill_conditioned_lp();
        let pre = precondition_lp(&lp).expect("constrained LP");
        let x = vec![0.3, -0.7];
        let mut fpu = stochastic_fpu::ReliableFpu::new();
        let y = pre.r().matvec(&mut fpu, &x).expect("shapes match");
        let back = pre.recover(&y).expect("R nonsingular");
        for (b, xi) in back.iter().zip(&x) {
            assert!((b - xi).abs() < 1e-10);
        }
        let _ = fpu.flops();
    }
}
