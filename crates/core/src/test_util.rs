//! Shared helpers for unit tests.

use crate::cost::CostFunction;
use stochastic_fpu::ReliableFpu;

/// Central finite-difference check of `gradient` against `cost` at a point
/// where the function is differentiable.
pub(crate) fn check_gradient<C: CostFunction>(cost: &C, x: &[f64]) {
    let mut fpu = ReliableFpu::new();
    let mut grad = vec![0.0; cost.dim()];
    cost.gradient(x, &mut fpu, &mut grad);
    let h = 1e-6;
    for i in 0..cost.dim() {
        let mut xp = x.to_vec();
        let mut xm = x.to_vec();
        xp[i] += h;
        xm[i] -= h;
        let fd = (cost.cost(&xp, &mut fpu) - cost.cost(&xm, &mut fpu)) / (2.0 * h);
        assert!(
            (grad[i] - fd).abs() < 1e-4 * (1.0 + fd.abs()),
            "component {i}: analytic {} vs fd {fd}",
            grad[i]
        );
    }
}
