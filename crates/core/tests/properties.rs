//! Property-based tests for the robustification framework.

use proptest::prelude::*;
use robustify_core::{
    AffineConstraints, CgLeastSquares, CostFunction, GradientGuard, GuardState, LinearCost,
    LinearProgram, PenaltyCost, PenaltyKind, QuadraticResidualCost, Sgd, StepSchedule,
};
use robustify_linalg::Matrix;
use stochastic_fpu::ReliableFpu;

fn matrix_strategy(m: usize, n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-5.0f64..5.0, m * n)
        .prop_map(move |data| Matrix::from_vec(m, n, data).expect("buffer sized m*n"))
}

fn full_rank_tall(m: usize, n: usize) -> impl Strategy<Value = Matrix> {
    matrix_strategy(m, n).prop_map(move |mut a| {
        for j in 0..n {
            let v = a[(j, j)];
            a[(j, j)] = v + 15.0;
        }
        a
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Step schedules are positive and within their defining envelopes.
    #[test]
    fn schedules_are_positive_and_bounded(gamma0 in 0.001f64..10.0, t in 1usize..100_000) {
        for s in [
            StepSchedule::Fixed(gamma0),
            StepSchedule::Linear { gamma0 },
            StepSchedule::Sqrt { gamma0 },
        ] {
            let g = s.step(t);
            prop_assert!(g > 0.0 && g <= gamma0 + 1e-15, "{s:?} at {t}: {g}");
        }
    }

    /// Penalized cost equals the raw objective exactly on feasible points,
    /// and strictly exceeds it on infeasible ones.
    #[test]
    fn penalty_is_exact_zero_on_feasible_points(
        x0 in -1.0f64..1.0,
        x1 in -1.0f64..1.0,
        mu in 0.5f64..100.0,
    ) {
        let ineq = AffineConstraints::new(
            Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]).expect("valid rows"),
            vec![1.0, 1.0],
        ).expect("consistent");
        for kind in [PenaltyKind::Abs, PenaltyKind::Squared] {
            let cost = PenaltyCost::new(LinearCost::new(vec![2.0, -3.0]), mu, kind)
                .expect("valid mu")
                .with_inequalities(ineq.clone())
                .expect("dims match");
            let mut fpu = ReliableFpu::new();
            let x = [x0, x1]; // always feasible: coords ≤ 1
            let expected = 2.0 * x0 - 3.0 * x1;
            prop_assert!((cost.cost(&x, &mut fpu) - expected).abs() < 1e-12);
            let bad = [x0 + 2.0, x1];
            prop_assert!(cost.cost(&bad, &mut fpu) > 2.0 * (x0 + 2.0) - 3.0 * x1);
        }
    }

    /// The LP violation measure is zero exactly on the feasible set.
    #[test]
    fn lp_violation_characterizes_feasibility(
        x0 in -2.0f64..2.0,
        x1 in -2.0f64..2.0,
    ) {
        let lp = LinearProgram::minimize(vec![1.0, 1.0])
            .with_upper_bounds(
                Matrix::from_rows(&[&[1.0, 1.0]]).expect("valid rows"),
                vec![1.0],
            )
            .expect("consistent")
            .with_nonneg();
        let feasible = x0 >= 0.0 && x1 >= 0.0 && x0 + x1 <= 1.0;
        let v = lp.violation(&[x0, x1]);
        prop_assert_eq!(v == 0.0, feasible, "violation {} at ({}, {})", v, x0, x1);
    }

    /// Subgradients of the penalty form match central finite differences at
    /// generic points (both penalty kinds).
    #[test]
    fn penalty_gradient_matches_finite_difference(
        x in proptest::collection::vec(-2.0f64..2.0, 3),
        mu in 0.5f64..20.0,
    ) {
        let a = Matrix::from_rows(&[&[1.0, 2.0, -1.0], &[0.5, -1.0, 1.5]]).expect("valid rows");
        let ineq = AffineConstraints::new(a, vec![0.37, -0.73]).expect("consistent");
        let cost = PenaltyCost::new(LinearCost::new(vec![1.0, -2.0, 0.5]), mu, PenaltyKind::Squared)
            .expect("valid mu")
            .with_inequalities(ineq)
            .expect("dims match")
            .with_nonneg();
        let mut fpu = ReliableFpu::new();
        let mut grad = vec![0.0; 3];
        cost.gradient(&x, &mut fpu, &mut grad);
        let h = 1e-6;
        for i in 0..3 {
            // Skip points that sit on a hinge kink for this lane.
            let mut p = x.clone();
            let mut m = x.clone();
            p[i] += h;
            m[i] -= h;
            let fd = (cost.cost(&p, &mut fpu) - cost.cost(&m, &mut fpu)) / (2.0 * h);
            if (grad[i] - fd).abs() > 1e-3 * (1.0 + fd.abs()) {
                // Tolerate kink points: verify the two one-sided slopes
                // bracket the reported subgradient instead.
                let f0 = cost.cost(&x, &mut fpu);
                let right = (cost.cost(&p, &mut fpu) - f0) / h;
                let left = (f0 - cost.cost(&m, &mut fpu)) / h;
                let (lo, hi) = if left <= right { (left, right) } else { (right, left) };
                prop_assert!(
                    grad[i] >= lo - 1e-3 && grad[i] <= hi + 1e-3,
                    "lane {}: subgradient {} outside [{}, {}]",
                    i, grad[i], lo, hi
                );
            }
        }
    }

    /// SGD on a least squares cost with a fixed stable step contracts the
    /// reliable cost (no noise ⇒ plain gradient descent must not increase
    /// the objective).
    #[test]
    fn reliable_sgd_never_increases_quadratic_cost(a in full_rank_tall(6, 3)) {
        let b = vec![1.0, -2.0, 0.5, 3.0, -1.0, 2.0];
        let mut cost = QuadraticResidualCost::new(a.clone(), b).expect("consistent");
        // Stable step: 1/(2 σ_max²) ≤ 1/(2 ‖A‖_F²).
        let mut fpu = ReliableFpu::new();
        let fro = a.frobenius_norm(&mut fpu);
        let gamma = 0.5 / (fro * fro);
        let report = Sgd::new(50, StepSchedule::Fixed(gamma))
            .with_guard(GradientGuard::Off)
            .with_trace(1)
            .run(&mut cost, &[0.0; 3], &mut ReliableFpu::new());
        let trace = report.trace.expect("trace requested");
        for w in trace.entries().windows(2) {
            prop_assert!(w[1].1 <= w[0].1 + 1e-9, "cost increased: {:?}", trace.entries());
        }
    }

    /// CG on a consistent square system solves it to high accuracy within
    /// `n` iterations on a reliable FPU.
    #[test]
    fn cg_solves_consistent_systems(a in full_rank_tall(4, 4), x_true in proptest::collection::vec(-3.0f64..3.0, 4)) {
        let mut fpu = ReliableFpu::new();
        let b = a.matvec(&mut fpu, &x_true).expect("shapes match");
        let solver = CgLeastSquares::new(&a, &b).expect("consistent")
            .with_max_iterations(12);
        let report = solver.solve(&[0.0; 4], &mut ReliableFpu::new());
        prop_assert!(report.final_cost < 1e-12, "residual {}", report.final_cost);
    }

    /// Every guard policy leaves an already-clean, small gradient intact.
    #[test]
    fn guards_do_not_disturb_clean_gradients(
        g in proptest::collection::vec(-0.5f64..0.5, 6),
    ) {
        for guard in [
            GradientGuard::Off,
            GradientGuard::ZeroNonFinite,
            GradientGuard::Clip { max_norm: 10.0 },
            GradientGuard::ClampComponents { max_abs: 10.0 },
        ] {
            let mut v = g.clone();
            GuardState::new(guard).apply(&mut v);
            prop_assert_eq!(&v, &g, "{:?} altered a clean gradient", guard);
        }
    }

    /// Every guard policy removes non-finite lanes (except `Off`).
    #[test]
    fn guards_remove_non_finite_lanes(
        g in proptest::collection::vec(-0.5f64..0.5, 6),
        lane in 0usize..6,
    ) {
        for guard in [
            GradientGuard::ZeroNonFinite,
            GradientGuard::Clip { max_norm: 10.0 },
            GradientGuard::ClampComponents { max_abs: 10.0 },
            GradientGuard::Adaptive { factor: 10.0, reject: 100.0 },
        ] {
            let mut v = g.clone();
            v[lane] = f64::INFINITY;
            GuardState::new(guard).apply(&mut v);
            prop_assert!(v.iter().all(|x| x.is_finite()), "{:?} left a non-finite lane", guard);
        }
    }
}
