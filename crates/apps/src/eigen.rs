//! Eigenvalue extraction (§4.7, "other numerical problems"): "one can find
//! the top eigenvalue/eigenvector pair by maximizing a Rayleigh quotient,
//! subtracting the resulting rank-1 matrix from the target matrix, and
//! repeating k times."
//!
//! The robust form maximizes `xᵀAx` on the unit sphere via the penalized
//! cost `f(x) = −xᵀAx + μ(xᵀx − 1)²`; the baseline is power iteration
//! through the faulty FPU.

use rand::{Rng, RngExt};
use robustify_core::{
    CoreError, CostFunction, RobustProblem, Sgd, SolveReport, SolverSpec, Verdict,
};
use robustify_linalg::Matrix;
use stochastic_fpu::{Fpu, ReliableFpu};

/// The penalized Rayleigh-quotient cost
/// `f(x) = −xᵀ A x + μ (xᵀx − 1)²` for a symmetric matrix `A`.
///
/// Its minimizers are `±v₁`, the top eigenvectors, once `μ` exceeds the top
/// eigenvalue.
///
/// # Examples
///
/// ```
/// use robustify_apps::eigen::RayleighCost;
/// use robustify_core::CostFunction;
/// use robustify_linalg::Matrix;
/// use stochastic_fpu::ReliableFpu;
///
/// # fn main() -> Result<(), robustify_core::CoreError> {
/// let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 1.0]])?;
/// let cost = RayleighCost::new(a, 10.0)?;
/// let mut fpu = ReliableFpu::new();
/// // The top eigenvector e1 scores −λ₁ = −2.
/// assert_eq!(cost.cost(&[1.0, 0.0], &mut fpu), -2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RayleighCost {
    a: Matrix,
    mu: f64,
}

impl RayleighCost {
    /// Creates the cost for symmetric `A` with norm-penalty weight `mu`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if `A` is not square/symmetric
    /// or `mu` is not positive and finite.
    pub fn new(a: Matrix, mu: f64) -> Result<Self, CoreError> {
        if !a.is_square() {
            return Err(CoreError::shape(
                "square matrix",
                format!("{}x{}", a.rows(), a.cols()),
            ));
        }
        for i in 0..a.rows() {
            for j in 0..i {
                if (a[(i, j)] - a[(j, i)]).abs() > 1e-9 {
                    return Err(CoreError::invalid_config("matrix must be symmetric"));
                }
            }
        }
        if !mu.is_finite() || mu <= 0.0 {
            return Err(CoreError::invalid_config(format!(
                "penalty weight must be positive and finite, got {mu}"
            )));
        }
        Ok(RayleighCost { a, mu })
    }

    /// The matrix `A`.
    pub fn matrix(&self) -> &Matrix {
        &self.a
    }

    /// The norm-penalty weight `μ`.
    pub fn mu(&self) -> f64 {
        self.mu
    }
}

impl CostFunction for RayleighCost {
    fn dim(&self) -> usize {
        self.a.rows()
    }

    fn cost<F: Fpu>(&self, x: &[f64], fpu: &mut F) -> f64 {
        let ax = self.a.matvec(fpu, x).expect("x has dim() entries");
        let xax = robustify_linalg::dot(fpu, x, &ax).expect("equal lengths");
        let xx = robustify_linalg::norm2_sq(fpu, x);
        let dev = fpu.sub(xx, 1.0);
        let dev_sq = fpu.mul(dev, dev);
        let pen = fpu.mul(self.mu, dev_sq);
        fpu.sub(pen, xax)
    }

    fn gradient<F: Fpu>(&self, x: &[f64], fpu: &mut F, grad: &mut [f64]) {
        // ∇f = −2 A x + 4 μ (xᵀx − 1) x.
        let ax = self.a.matvec(fpu, x).expect("x has dim() entries");
        let xx = robustify_linalg::norm2_sq(fpu, x);
        let dev = fpu.sub(xx, 1.0);
        // detlint::allow(fpu-routing, reason = "4*mu is a constant fold of problem constants; per-element FLOPs route through the Fpu")
        let coef = fpu.mul(4.0 * self.mu, dev);
        for ((g, &axi), &xi) in grad.iter_mut().zip(&ax).zip(x) {
            let lin = fpu.mul(2.0, axi);
            let sph = fpu.mul(coef, xi);
            *g = fpu.sub(sph, lin);
        }
    }

    fn anneal(&mut self, factor: f64) {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "anneal factor must be positive"
        );
        // Saturated as in `PenaltyCost::anneal`.
        self.mu = (self.mu * factor).min(1e9);
    }
}

/// A top-eigenpair problem for a symmetric matrix, with a robust SGD solver
/// and a power-iteration baseline.
///
/// # Examples
///
/// ```
/// use robustify_apps::eigen::EigenProblem;
/// use robustify_core::{Sgd, StepSchedule};
/// use robustify_linalg::Matrix;
/// use stochastic_fpu::ReliableFpu;
///
/// # fn main() -> Result<(), robustify_core::CoreError> {
/// let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 3.0]])?;
/// let p = EigenProblem::new(a)?;
/// let sgd = Sgd::new(2000, StepSchedule::Sqrt { gamma0: 0.05 });
/// let (lambda, _v, _report) = p.solve_sgd(&sgd, &mut ReliableFpu::new());
/// assert!((lambda - 4.0).abs() < 0.05);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EigenProblem {
    a: Matrix,
    top_eigenvalue: f64,
}

impl EigenProblem {
    /// Creates the problem, computing the reliable top eigenvalue offline
    /// (500 reliable power iterations).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if `A` is not symmetric.
    pub fn new(a: Matrix) -> Result<Self, CoreError> {
        // Validate symmetry by constructing the cost once.
        let _ = RayleighCost::new(a.clone(), 1.0)?;
        let (lambda, _) = power_iteration(&mut ReliableFpu::new(), &a, 500);
        Ok(EigenProblem {
            a,
            top_eigenvalue: lambda,
        })
    }

    /// Generates a random symmetric matrix problem with entries in
    /// `[-1, 1)` plus a diagonal shift keeping the top eigenvalue positive.
    pub fn random<R: Rng>(rng: &mut R, n: usize) -> Self {
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = rng.random_range(-1.0..1.0);
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
            let d = a[(i, i)];
            // detlint::allow(fpu-routing, reason = "test-matrix construction is reliable problem setup")
            a[(i, i)] = d + n as f64 * 0.5;
        }
        Self::new(a).expect("constructed matrix is symmetric")
    }

    /// The matrix `A`.
    pub fn matrix(&self) -> &Matrix {
        &self.a
    }

    /// The reliable top eigenvalue (ground truth).
    pub fn top_eigenvalue(&self) -> f64 {
        self.top_eigenvalue
    }

    /// Solves with SGD on the penalized Rayleigh cost, returning the
    /// decoded eigenvalue (reliable Rayleigh quotient of the normalized
    /// iterate), the eigenvector estimate, and the report.
    pub fn solve_sgd<F: Fpu>(&self, sgd: &Sgd, fpu: &mut F) -> (f64, Vec<f64>, SolveReport) {
        // Cost and start come from the one RobustProblem definition so the
        // two solve paths can never drift apart.
        let mut cost = RobustProblem::cost(self);
        let x0 = RobustProblem::initial_iterate(self, &cost, fpu);
        let report = sgd.run(&mut cost, &x0, fpu);
        let (lambda, v) = self.decode(&report.x);
        (lambda, v, report)
    }

    /// Decodes an iterate: normalize (native) and compute the reliable
    /// Rayleigh quotient. Non-finite iterates decode to `(NaN, x)`.
    pub fn decode(&self, x: &[f64]) -> (f64, Vec<f64>) {
        if x.iter().any(|v| !v.is_finite()) {
            return (f64::NAN, x.to_vec());
        }
        // detlint::allow(float-reassociation, reason = "decode normalizes natively: reliable verification measurement")
        // detlint::allow(fpu-routing, reason = "decode normalizes natively: reliable verification measurement")
        let norm: f64 = x.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm == 0.0 {
            return (f64::NAN, x.to_vec());
        }
        let v: Vec<f64> = x.iter().map(|e| e / norm).collect();
        let mut fpu = ReliableFpu::new();
        let av = self.a.matvec(&mut fpu, &v).expect("v has dim() entries");
        let lambda = robustify_linalg::dot(&mut fpu, &v, &av).expect("equal lengths");
        (lambda, v)
    }

    /// The fault-exposed power-iteration baseline: `k` iterations of
    /// `x ← A x / ‖A x‖` through `fpu`, decoded reliably.
    pub fn solve_baseline<F: Fpu>(&self, fpu: &mut F, k: usize) -> (f64, Vec<f64>) {
        let (_, v) = power_iteration(fpu, &self.a, k);
        let (lambda, v) = self.decode(&v);
        (lambda, v)
    }

    /// Relative eigenvalue error against the ground truth (native
    /// measurement; NaN yields `∞`).
    pub fn relative_error(&self, lambda: f64) -> f64 {
        if !lambda.is_finite() {
            return f64::INFINITY;
        }
        (lambda - self.top_eigenvalue).abs() / self.top_eigenvalue.abs().max(1e-300)
    }

    /// Extracts the top `k` eigenpairs by the paper's deflation scheme:
    /// "maximizing a Rayleigh quotient, subtracting the resulting rank-1
    /// matrix from the target matrix, and repeating k times." Each stage's
    /// gradients run through `fpu`; the deflation `A ← A − λ v vᵀ` is a
    /// between-stage control step (native arithmetic).
    ///
    /// Returns `(eigenvalue, eigenvector)` pairs in extraction order.
    /// Stages whose iterate decodes to NaN are skipped in the deflation and
    /// reported as `(NaN, v)` — under heavy faults the caller can see which
    /// stages failed.
    ///
    /// # Panics
    ///
    /// Panics if `k` exceeds the matrix dimension.
    pub fn solve_top_k_sgd<F: Fpu>(
        &self,
        k: usize,
        sgd: &Sgd,
        fpu: &mut F,
    ) -> Vec<(f64, Vec<f64>)> {
        let n = self.a.rows();
        assert!(
            k <= n,
            "cannot extract {k} eigenpairs from a {n}x{n} matrix"
        );
        let mut pairs = Vec::with_capacity(k);
        let mut current = self.clone();
        for _ in 0..k {
            let (lambda, v, _) = current.solve_sgd(sgd, fpu);
            if lambda.is_finite() {
                // Deflate: A ← A − λ v vᵀ (control plane).
                let mut deflated = current.a.clone();
                for i in 0..n {
                    for j in 0..n {
                        deflated[(i, j)] -= lambda * v[i] * v[j];
                    }
                }
                current = EigenProblem::new(deflated)
                    .expect("deflation of a symmetric matrix stays symmetric");
            }
            pairs.push((lambda, v));
        }
        pairs
    }
}

impl RobustProblem for EigenProblem {
    type Solution = (f64, Vec<f64>);
    type Cost = RayleighCost;

    fn name(&self) -> &'static str {
        "eigen"
    }

    fn cost(&self) -> Self::Cost {
        // detlint::allow(fpu-routing, reason = "penalty weight mu is a setup-time constant")
        let mu = 2.0 * self.top_eigenvalue.abs().max(1.0);
        RayleighCost::new(self.a.clone(), mu).expect("matrix validated at problem construction")
    }

    /// The deterministic non-degenerate start on the unit sphere used by
    /// [`solve_sgd`](EigenProblem::solve_sgd).
    fn initial_iterate<F: Fpu>(&self, _cost: &Self::Cost, _fpu: &mut F) -> Vec<f64> {
        let n = self.a.rows();
        // detlint::allow(fpu-routing, reason = "deterministic start vector is reliable problem setup")
        let x0: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).sin()).collect();
        // detlint::allow(float-reassociation, reason = "deterministic start vector is reliable problem setup")
        // detlint::allow(fpu-routing, reason = "deterministic start vector is reliable problem setup")
        let norm: f64 = x0.iter().map(|v| v * v).sum::<f64>().sqrt();
        x0.iter().map(|v| v / norm).collect()
    }

    fn decode(&self, _cost: &Self::Cost, x: &[f64]) -> (f64, Vec<f64>) {
        EigenProblem::decode(self, x)
    }

    fn reference(&self) -> (f64, Vec<f64>) {
        self.solve_baseline(&mut ReliableFpu::new(), 500)
    }

    /// The metric is the relative eigenvalue error; success requires it at
    /// most 5%.
    fn verify(&self, solution: &(f64, Vec<f64>)) -> Verdict {
        Verdict::from_metric(self.relative_error(solution.0), 0.05)
    }

    /// The power-iteration baseline, running `spec.iterations` iterations
    /// through the faulty FPU.
    fn baseline<F: Fpu>(&self, spec: &SolverSpec, fpu: &mut F) -> Option<(f64, Vec<f64>)> {
        Some(self.solve_baseline(fpu, spec.iterations))
    }
}

/// Power iteration through an FPU; returns `(rayleigh, vector)` where the
/// quotient is computed through the same FPU.
fn power_iteration<F: Fpu>(fpu: &mut F, a: &Matrix, k: usize) -> (f64, Vec<f64>) {
    let n = a.rows();
    // detlint::allow(fpu-routing, reason = "deterministic power-iteration seed is reliable setup")
    let mut x: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64) * 0.01).collect();
    for _ in 0..k {
        let ax = a.matvec(fpu, &x).expect("x has n entries");
        let norm = robustify_linalg::norm2(fpu, &ax);
        if !norm.is_finite() || norm == 0.0 {
            // Restart from the deterministic seed rather than dividing by a
            // corrupted norm.
            // detlint::allow(fpu-routing, reason = "deterministic restart seed is reliable setup")
            x = (0..n).map(|i| 1.0 + (i as f64) * 0.01).collect();
            continue;
        }
        x = ax.iter().map(|&v| fpu.div(v, norm)).collect();
    }
    let ax = a.matvec(fpu, &x).expect("x has n entries");
    let lambda = robustify_linalg::dot(fpu, &x, &ax).expect("equal lengths");
    (lambda, x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use robustify_core::StepSchedule;
    use stochastic_fpu::{BitFaultModel, FaultRate, NoisyFpu};

    fn two_by_two() -> EigenProblem {
        // Eigenvalues 4 and 2, top eigenvector (1, 1)/√2.
        EigenProblem::new(Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 3.0]]).expect("valid rows"))
            .expect("symmetric")
    }

    #[test]
    fn ground_truth_is_correct() {
        let p = two_by_two();
        assert!((p.top_eigenvalue() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn rayleigh_gradient_matches_finite_difference() {
        let p = two_by_two();
        let cost = RayleighCost::new(p.matrix().clone(), 5.0).expect("symmetric");
        let x = [0.8, -0.3];
        let mut fpu = ReliableFpu::new();
        let mut grad = vec![0.0; 2];
        cost.gradient(&x, &mut fpu, &mut grad);
        let h = 1e-6;
        for i in 0..2 {
            let mut xp = x.to_vec();
            let mut xm = x.to_vec();
            xp[i] += h;
            xm[i] -= h;
            let fd = (cost.cost(&xp, &mut fpu) - cost.cost(&xm, &mut fpu)) / (2.0 * h);
            assert!((grad[i] - fd).abs() < 1e-4 * (1.0 + fd.abs()), "lane {i}");
        }
    }

    #[test]
    fn sgd_finds_top_eigenpair_reliably() {
        let p = two_by_two();
        let sgd = Sgd::new(3000, StepSchedule::Sqrt { gamma0: 0.05 });
        let (lambda, v, _) = p.solve_sgd(&sgd, &mut ReliableFpu::new());
        assert!(p.relative_error(lambda) < 0.01, "lambda {lambda}");
        // Eigenvector alignment: |⟨v, (1,1)/√2⟩| ≈ 1.
        let align = ((v[0] + v[1]) / 2f64.sqrt()).abs();
        assert!(align > 0.99, "alignment {align}");
    }

    #[test]
    fn baseline_power_iteration_is_exact_reliably() {
        let p = two_by_two();
        let (lambda, _) = p.solve_baseline(&mut ReliableFpu::new(), 200);
        assert!(p.relative_error(lambda) < 1e-9);
    }

    #[test]
    fn sgd_degrades_gracefully_under_faults() {
        let p = EigenProblem::random(&mut StdRng::seed_from_u64(3), 6);
        let mut total = 0.0;
        let runs = 5;
        for seed in 0..runs {
            let sgd = Sgd::new(4000, StepSchedule::Sqrt { gamma0: 0.02 });
            let mut fpu = NoisyFpu::new(FaultRate::per_flop(0.01), BitFaultModel::emulated(), seed);
            let (lambda, _, _) = p.solve_sgd(&sgd, &mut fpu);
            total += p.relative_error(lambda).min(10.0);
        }
        assert!(
            total / (runs as f64) < 0.5,
            "mean relative error {}",
            total / runs as f64
        );
    }

    #[test]
    fn constructors_validate() {
        assert!(RayleighCost::new(Matrix::zeros(2, 3), 1.0).is_err());
        let asym = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 1.0]]).expect("valid rows");
        assert!(RayleighCost::new(asym.clone(), 1.0).is_err());
        assert!(EigenProblem::new(asym).is_err());
        let sym = Matrix::identity(2);
        assert!(RayleighCost::new(sym, 0.0).is_err());
    }

    #[test]
    fn deflation_extracts_both_eigenpairs() {
        let p = two_by_two(); // eigenvalues 4 and 2
        let sgd = Sgd::new(3000, StepSchedule::Sqrt { gamma0: 0.05 });
        let pairs = p.solve_top_k_sgd(2, &sgd, &mut ReliableFpu::new());
        assert_eq!(pairs.len(), 2);
        assert!((pairs[0].0 - 4.0).abs() < 0.05, "lambda1 {}", pairs[0].0);
        assert!((pairs[1].0 - 2.0).abs() < 0.05, "lambda2 {}", pairs[1].0);
        // Eigenvectors of a symmetric matrix are orthogonal.
        let dot: f64 = pairs[0].1.iter().zip(&pairs[1].1).map(|(a, b)| a * b).sum();
        assert!(dot.abs() < 0.05, "eigenvectors not orthogonal: {dot}");
    }

    #[test]
    fn deflation_survives_moderate_faults() {
        let p = EigenProblem::random(&mut StdRng::seed_from_u64(6), 5);
        let sgd = Sgd::new(3000, StepSchedule::Sqrt { gamma0: 0.02 });
        let mut fpu = NoisyFpu::new(FaultRate::per_flop(0.01), BitFaultModel::emulated(), 8);
        let pairs = p.solve_top_k_sgd(2, &sgd, &mut fpu);
        // The top eigenvalue estimate stays in the ballpark.
        assert!(
            p.relative_error(pairs[0].0) < 0.5,
            "top eigenvalue error {}",
            p.relative_error(pairs[0].0)
        );
    }

    #[test]
    #[should_panic(expected = "eigenpairs")]
    fn top_k_validates_k() {
        let p = two_by_two();
        let sgd = Sgd::new(10, StepSchedule::Fixed(0.01));
        p.solve_top_k_sgd(3, &sgd, &mut ReliableFpu::new());
    }

    #[test]
    fn decode_handles_degenerate_iterates() {
        let p = two_by_two();
        let (lambda, _) = p.decode(&[f64::NAN, 1.0]);
        assert!(lambda.is_nan());
        let (lambda, _) = p.decode(&[0.0, 0.0]);
        assert!(lambda.is_nan());
        assert_eq!(p.relative_error(f64::NAN), f64::INFINITY);
    }
}
