//! The paper's transformed applications (Chapter 4) and their deterministic
//! baselines.
//!
//! Each module pairs a *robustified* implementation — the application recast
//! as a numerical optimization problem and solved with the stochastic
//! engines of [`robustify_core`] — with the *state-of-the-art deterministic
//! baseline* the paper compares against, both executed through the same
//! fault-injected [`Fpu`](stochastic_fpu::Fpu):
//!
//! | Module | Robust form | Baseline |
//! |---|---|---|
//! | [`least_squares`] | SGD / CG on `‖Ax−b‖²` (§4.1) | SVD, QR, Cholesky |
//! | [`iir`] | banded least squares `‖Bx−Au‖²` (§4.2) | direct-form recursion |
//! | [`sorting`] | LP over doubly stochastic matrices (§4.3) | quicksort / mergesort |
//! | [`matching`] | LP over doubly stochastic matrices (§4.4) | Hungarian |
//! | [`maxflow`] | flow LP (§4.5) | Ford–Fulkerson |
//! | [`apsp`] | distance LP (§4.6) | Floyd–Warshall |
//! | [`eigen`] | penalized Rayleigh quotient + deflation (§4.7) | power iteration |
//! | [`svm`] | hinge-loss data fitting (§4.7) | reliable SGD reference |
//! | [`doubly_stochastic`] | assignment LP (4.3) as its own problem | Hungarian |
//! | [`poisson2d`] | sparse CG on the 5-point Laplacian (§3.3 at 10⁵ unknowns) | — |
//!
//! Every application implements
//! [`RobustProblem`](robustify_core::RobustProblem), so any of them can be
//! paired with any declarative [`SolverSpec`](robustify_core::SolverSpec)
//! and swept in parallel by `robustify_engine` — the experiment binaries in
//! `robustify_bench` are thin sweep descriptions over exactly this
//! interface. (The old serial `harness::TrialConfig` shim is gone; build a
//! [`SweepSpec`](robustify_engine::SweepSpec) instead — the engine keeps
//! the shim's exact per-trial seeding via
//! [`derive_trial_seed`](robustify_engine::derive_trial_seed).)

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod apsp;
pub mod doubly_stochastic;
pub mod eigen;
pub mod iir;
pub mod least_squares;
pub mod matching;
pub mod maxflow;
pub mod poisson2d;
pub mod sorting;
pub mod svm;
