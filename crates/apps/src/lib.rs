//! The paper's transformed applications (Chapter 4) and their deterministic
//! baselines.
//!
//! Each module pairs a *robustified* implementation — the application recast
//! as a numerical optimization problem and solved with the stochastic
//! engines of [`robustify_core`] — with the *state-of-the-art deterministic
//! baseline* the paper compares against, both executed through the same
//! fault-injected [`Fpu`](stochastic_fpu::Fpu):
//!
//! | Module | Robust form | Baseline |
//! |---|---|---|
//! | [`least_squares`] | SGD / CG on `‖Ax−b‖²` (§4.1) | SVD, QR, Cholesky |
//! | [`iir`] | banded least squares `‖Bx−Au‖²` (§4.2) | direct-form recursion |
//! | [`sorting`] | LP over doubly stochastic matrices (§4.3) | quicksort / mergesort |
//! | [`matching`] | LP over doubly stochastic matrices (§4.4) | Hungarian |
//! | [`maxflow`] | flow LP (§4.5) | Ford–Fulkerson |
//! | [`apsp`] | distance LP (§4.6) | Floyd–Warshall |
//! | [`eigen`] | penalized Rayleigh quotient + deflation (§4.7) | power iteration |
//! | [`svm`] | hinge-loss data fitting (§4.7) | reliable SGD reference |
//!
//! The [`harness`] module provides the seeded trial runners used by the
//! experiment binaries and integration tests.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod apsp;
pub mod doubly_stochastic;
pub mod eigen;
pub mod harness;
pub mod iir;
pub mod least_squares;
pub mod matching;
pub mod maxflow;
pub mod sorting;
pub mod svm;
