//! Least squares (§4.1): "a fundamental problem in numerical linear
//! algebra ... typically implemented on current CPUs via the SVD or the QR
//! decomposition of A. ... these algorithms are disastrously unstable under
//! numerical noise, but minimizing `f(x) = ‖Ax − b‖²` by gradient descent
//! tolerates numerical noise well."

use rand::{Rng, RngExt};
use robustify_core::{
    CgLeastSquares, CgReport, CoreError, QuadraticResidualCost, RobustOutcome, RobustProblem, Sgd,
    SolveMethod, SolveReport, SolverSpec, StepSchedule, Verdict,
};
use robustify_linalg::{lstsq_cholesky, lstsq_qr, lstsq_svd, LinalgError, Matrix, QrFactorization};
use stochastic_fpu::{Fpu, ReliableFpu};

/// A least squares problem `min ‖A x − b‖` with robust (SGD, CG) and
/// baseline (SVD, QR, Cholesky) solvers.
///
/// # Examples
///
/// ```
/// use robustify_apps::least_squares::LeastSquares;
/// use robustify_core::{AggressiveStepping, Sgd, StepSchedule};
/// use stochastic_fpu::ReliableFpu;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = LeastSquares::from_rows(&[&[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]], vec![1.0, 2.0, 3.0])?;
/// // The paper's "SGD+AS,LS" variant: 1/t steps plus aggressive stepping.
/// let sgd = Sgd::new(1000, StepSchedule::Linear { gamma0: p.default_gamma0() })
///     .with_aggressive_stepping(AggressiveStepping::default());
/// let report = p.solve_sgd(&sgd, &mut ReliableFpu::new());
/// assert!(p.relative_error(&report.x) < 1e-3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LeastSquares {
    a: Matrix,
    b: Vec<f64>,
}

impl LeastSquares {
    /// Creates the problem `(A, b)`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] if `b.len() != a.rows()` or
    /// `A` has fewer rows than columns.
    pub fn new(a: Matrix, b: Vec<f64>) -> Result<Self, CoreError> {
        if b.len() != a.rows() {
            return Err(CoreError::shape(
                format!("rhs of length {}", a.rows()),
                format!("length {}", b.len()),
            ));
        }
        if a.rows() < a.cols() {
            return Err(CoreError::shape(
                "at least as many rows as columns",
                format!("{}x{}", a.rows(), a.cols()),
            ));
        }
        Ok(LeastSquares { a, b })
    }

    /// Creates the problem from row slices.
    ///
    /// # Errors
    ///
    /// As [`LeastSquares::new`], plus matrix construction errors.
    pub fn from_rows(rows: &[&[f64]], b: Vec<f64>) -> Result<Self, CoreError> {
        Self::new(Matrix::from_rows(rows)?, b)
    }

    /// Generates a random well-conditioned `m × n` problem with entries in
    /// `[-1, 1)` and a diagonal boost for column independence.
    ///
    /// # Panics
    ///
    /// Panics if `m < n` or `n == 0`.
    pub fn random<R: Rng>(rng: &mut R, m: usize, n: usize) -> Self {
        assert!(m >= n && n > 0, "need m >= n > 0, got {m}x{n}");
        let mut a = Matrix::from_fn(m, n, |_, _| rng.random_range(-1.0..1.0));
        for j in 0..n {
            let v = a[(j, j)];
            // detlint::allow(fpu-routing, reason = "test-matrix construction is reliable problem setup")
            a[(j, j)] = v + 2.0;
        }
        let b = (0..m).map(|_| rng.random_range(-1.0..1.0)).collect();
        Self::new(a, b).expect("generated shapes are consistent")
    }

    /// Generates a random `m × n` problem with 2-norm condition number
    /// `cond`, built as `U Σ Vᵀ` from QR-orthonormalized random factors with
    /// log-spaced singular values.
    ///
    /// # Panics
    ///
    /// Panics if `m < n`, `n == 0`, or `cond < 1`.
    pub fn random_with_condition<R: Rng>(rng: &mut R, m: usize, n: usize, cond: f64) -> Self {
        assert!(m >= n && n > 0, "need m >= n > 0, got {m}x{n}");
        assert!(
            cond >= 1.0,
            "condition number must be at least 1, got {cond}"
        );
        let mut fpu = ReliableFpu::new();
        let orthonormal = |rng: &mut R, rows: usize, cols: usize, fpu: &mut ReliableFpu| {
            let raw = Matrix::from_fn(rows, cols, |i, j| {
                rng.random_range(-1.0..1.0) + if i == j { 2.0 } else { 0.0 }
            });
            let (q, _) = QrFactorization::compute(fpu, &raw)
                .expect("randomized full-rank factor")
                .into_parts();
            q
        };
        let u = orthonormal(rng, m, n, &mut fpu);
        let v = orthonormal(rng, n, n, &mut fpu);
        // Singular values log-spaced from 1 down to 1/cond.
        let mut us = u;
        for j in 0..n {
            let t = if n == 1 {
                0.0
            } else {
                j as f64 / (n - 1) as f64
            };
            // detlint::allow(fpu-routing, reason = "singular-value profile is reliable problem construction")
            let sigma = cond.powf(-t);
            for i in 0..m {
                us[(i, j)] *= sigma;
            }
        }
        let a = us.matmul(&mut fpu, &v.transpose()).expect("shapes match");
        let b = (0..m).map(|_| rng.random_range(-1.0..1.0)).collect();
        Self::new(a, b).expect("generated shapes are consistent")
    }

    /// The system matrix `A`.
    pub fn a(&self) -> &Matrix {
        &self.a
    }

    /// The right-hand side `b`.
    pub fn b(&self) -> &[f64] {
        &self.b
    }

    /// Number of unknowns.
    pub fn dim(&self) -> usize {
        self.a.cols()
    }

    /// The variational cost `‖Ax − b‖²` of §4.1.
    pub fn cost(&self) -> QuadraticResidualCost {
        QuadraticResidualCost::new(self.a.clone(), self.b.clone())
            .expect("problem shapes are consistent by construction")
    }

    /// Solves with a caller-configured SGD from the zero iterate.
    pub fn solve_sgd<F: Fpu>(&self, sgd: &Sgd, fpu: &mut F) -> SolveReport {
        let mut cost = self.cost();
        sgd.run(&mut cost, &vec![0.0; self.dim()], fpu)
    }

    /// Solves with the paper's Figure 6.2 configuration: 1000 iterations of
    /// SGD with linear (`1/t`) step scaling.
    pub fn solve_sgd_default<F: Fpu>(&self, fpu: &mut F) -> SolveReport {
        self.solve_sgd(
            &Sgd::new(
                1000,
                StepSchedule::Linear {
                    gamma0: self.default_gamma0(),
                },
            ),
            fpu,
        )
    }

    /// The initial step size used by the default solver: `1 / σ_max²`,
    /// with `σ_max` estimated by a short reliable power iteration on `AᵀA`
    /// (one-time control-plane setup). This is the stability edge of
    /// gradient descent on `‖Ax − b‖²` (whose curvature is `2 σ_max²`),
    /// where the `1/t` schedule makes the most progress — standing in for
    /// the manual per-experiment tuning the paper describes.
    pub fn default_gamma0(&self) -> f64 {
        // detlint::allow(fpu-routing, reason = "gamma0 tuning estimate is reliable control-plane arithmetic")
        1.0 / self.sigma_max_sq_estimate().max(1e-12)
    }

    /// Reliable power-iteration estimate of `σ_max²` (15 iterations).
    fn sigma_max_sq_estimate(&self) -> f64 {
        let mut fpu = ReliableFpu::new();
        let n = self.dim();
        // detlint::allow(fpu-routing, reason = "power-iteration seed on an explicit ReliableFpu")
        let mut v: Vec<f64> = (0..n).map(|i| 1.0 + 0.01 * i as f64).collect();
        let mut lambda = 0.0;
        for _ in 0..15 {
            let av = self.a.matvec(&mut fpu, &v).expect("v has dim() entries");
            let atav = self
                .a
                .matvec_t(&mut fpu, &av)
                .expect("Av has rows() entries");
            lambda = robustify_linalg::norm2(&mut fpu, &atav);
            if lambda == 0.0 {
                return 0.0;
            }
            v = atav.iter().map(|&x| x / lambda).collect();
        }
        lambda
    }

    /// Solves with conjugate gradient (§3.3 / Figure 6.6, default `N = 10`
    /// iterations, restart every 4).
    pub fn solve_cg<F: Fpu>(&self, iterations: usize, fpu: &mut F) -> CgReport {
        CgLeastSquares::new(&self.a, &self.b)
            .expect("problem shapes are consistent by construction")
            .with_max_iterations(iterations)
            .with_restart_interval(4)
            .solve(&vec![0.0; self.dim()], fpu)
    }

    /// The "Base: SVD" solver, through the given (possibly faulty) FPU.
    ///
    /// # Errors
    ///
    /// Propagates numerical breakdowns ([`LinalgError`]), which count as
    /// failed baseline runs.
    pub fn solve_svd<F: Fpu>(&self, fpu: &mut F) -> Result<Vec<f64>, LinalgError> {
        lstsq_svd(fpu, &self.a, &self.b)
    }

    /// The "Base: QR" solver, through the given (possibly faulty) FPU.
    ///
    /// # Errors
    ///
    /// Propagates numerical breakdowns ([`LinalgError`]).
    pub fn solve_qr<F: Fpu>(&self, fpu: &mut F) -> Result<Vec<f64>, LinalgError> {
        lstsq_qr(fpu, &self.a, &self.b)
    }

    /// The "Base: Cholesky" solver, through the given (possibly faulty)
    /// FPU.
    ///
    /// # Errors
    ///
    /// Propagates numerical breakdowns ([`LinalgError`]).
    pub fn solve_cholesky<F: Fpu>(&self, fpu: &mut F) -> Result<Vec<f64>, LinalgError> {
        lstsq_cholesky(fpu, &self.a, &self.b)
    }

    /// The exact solution computed offline with a reliable QR solve — the
    /// paper's "exact value computed offline with an SVD-based baseline".
    pub fn ideal(&self) -> Vec<f64> {
        lstsq_qr(&mut ReliableFpu::new(), &self.a, &self.b)
            .expect("experiment problems are full rank")
    }

    /// The paper's quality metric: relative difference between the ideal
    /// output and the actual output, `‖x − x*‖ / ‖x*‖` (native arithmetic;
    /// non-finite candidates yield `∞`).
    pub fn relative_error(&self, x: &[f64]) -> f64 {
        if x.iter().any(|v| !v.is_finite()) {
            return f64::INFINITY;
        }
        let ideal = self.ideal();
        let num: f64 = x
            .iter()
            .zip(&ideal)
            .map(|(a, b)| (a - b) * (a - b))
            // detlint::allow(float-reassociation, reason = "relative-error metric is reliable verification arithmetic")
            .sum::<f64>()
            // detlint::allow(fpu-routing, reason = "relative-error metric is reliable verification arithmetic")
            .sqrt();
        // detlint::allow(float-reassociation, reason = "relative-error metric is reliable verification arithmetic")
        // detlint::allow(fpu-routing, reason = "relative-error metric is reliable verification arithmetic")
        let den: f64 = ideal.iter().map(|v| v * v).sum::<f64>().sqrt();
        num / den.max(1e-300)
    }

    /// The paper's Figure 6.2 y-axis as literally defined there — "the
    /// relative difference between the ideal output and actual output
    /// (‖Ax − b‖²)": the relative excess of the candidate's residual norm
    /// over the ideal residual norm, `(‖Ax − b‖ − ‖Ax* − b‖) / ‖Ax* − b‖`
    /// (native measurement; non-finite candidates yield `∞`).
    pub fn residual_relative_error(&self, x: &[f64]) -> f64 {
        let r = self.residual_norm(x);
        if !r.is_finite() {
            return f64::INFINITY;
        }
        let ideal = self.residual_norm(&self.ideal());
        (r - ideal).abs() / ideal.max(1e-300)
    }

    /// The residual norm `‖Ax − b‖` measured reliably (native measurement).
    pub fn residual_norm(&self, x: &[f64]) -> f64 {
        if x.iter().any(|v| !v.is_finite()) {
            return f64::INFINITY;
        }
        let mut fpu = ReliableFpu::new();
        let ax = self.a.matvec(&mut fpu, x).expect("x has dim() entries");
        let r: Vec<f64> = self.b.iter().zip(&ax).map(|(bi, ai)| bi - ai).collect();
        robustify_linalg::norm2(&mut fpu, &r)
    }
}

impl RobustProblem for LeastSquares {
    type Solution = Vec<f64>;
    type Cost = QuadraticResidualCost;

    fn name(&self) -> &'static str {
        "least_squares"
    }

    fn cost(&self) -> Self::Cost {
        LeastSquares::cost(self)
    }

    fn decode(&self, _cost: &Self::Cost, x: &[f64]) -> Vec<f64> {
        x.to_vec()
    }

    fn reference(&self) -> Vec<f64> {
        self.ideal()
    }

    /// The metric is the paper's residual relative error; as in Figure 6.2,
    /// a trial only *fails* outright when it breaks down (non-finite
    /// output).
    fn verify(&self, solution: &Vec<f64>) -> Verdict {
        let metric = self.residual_relative_error(solution);
        Verdict {
            success: metric.is_finite(),
            metric,
        }
    }

    /// Baseline variants: `svd` (default), `qr`, `cholesky`.
    fn baseline<F: Fpu>(&self, spec: &SolverSpec, fpu: &mut F) -> Option<Vec<f64>> {
        match spec.variant.as_deref() {
            None | Some("svd") => self.solve_svd(fpu).ok(),
            Some("qr") => self.solve_qr(fpu).ok(),
            Some("cholesky") => self.solve_cholesky(fpu).ok(),
            Some(_) => None,
        }
    }

    /// Adds [`SolveMethod::Cg`] (restarted conjugate gradient, §3.3) on top
    /// of the default SGD/baseline paths.
    fn solve<F: Fpu>(
        &self,
        spec: &SolverSpec,
        fpu: &mut F,
    ) -> Result<RobustOutcome<Vec<f64>>, CoreError> {
        match spec.method {
            SolveMethod::Cg => {
                let report = CgLeastSquares::new(&self.a, &self.b)
                    .expect("problem shapes are consistent by construction")
                    .with_max_iterations(spec.iterations)
                    .with_restart_interval(spec.restart)
                    .solve(&vec![0.0; self.dim()], fpu);
                Ok(RobustOutcome {
                    solution: Some(report.x),
                    report: None,
                })
            }
            _ => robustify_core::default_solve(self, spec, fpu),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use robustify_linalg::condition_number;
    use stochastic_fpu::{BitFaultModel, FaultRate, NoisyFpu};

    fn paper_problem() -> LeastSquares {
        // The paper's Figure 6.2 scale: A is 100 x 10.
        let mut rng = StdRng::seed_from_u64(1);
        LeastSquares::random(&mut rng, 100, 10)
    }

    #[test]
    fn all_solvers_agree_on_reliable_fpu() {
        let p = paper_problem();
        let mut fpu = ReliableFpu::new();
        let ideal = p.ideal();
        for x in [
            p.solve_svd(&mut fpu).expect("full rank"),
            p.solve_qr(&mut fpu).expect("full rank"),
            p.solve_cholesky(&mut fpu).expect("full rank"),
        ] {
            for (a, b) in x.iter().zip(&ideal) {
                assert!((a - b).abs() < 1e-8);
            }
        }
        let cg = p.solve_cg(10, &mut fpu);
        // Restarted CG does not terminate exactly in n steps, but gets close.
        assert!(
            p.relative_error(&cg.x) < 1e-4,
            "cg error {}",
            p.relative_error(&cg.x)
        );
    }

    #[test]
    fn sgd_reaches_modest_accuracy_reliably() {
        let p = paper_problem();
        let report = p.solve_sgd_default(&mut ReliableFpu::new());
        assert!(
            p.relative_error(&report.x) < 1e-2,
            "relative error {}",
            p.relative_error(&report.x)
        );
    }

    #[test]
    fn sgd_beats_svd_baseline_under_faults() {
        // The headline claim of Figure 6.2: at a moderate fault rate the SVD
        // baseline is disastrously unstable while SGD degrades gracefully.
        let p = paper_problem();
        let mut sgd_total = 0.0;
        let mut svd_total = 0.0;
        let runs = 5;
        for seed in 0..runs {
            let mut fpu = NoisyFpu::new(FaultRate::per_flop(0.02), BitFaultModel::emulated(), seed);
            let report = p.solve_sgd_default(&mut fpu);
            sgd_total += p.relative_error(&report.x).min(1e3);
            let mut fpu = NoisyFpu::new(
                FaultRate::per_flop(0.02),
                BitFaultModel::emulated(),
                100 + seed,
            );
            let err = match p.solve_svd(&mut fpu) {
                Ok(x) => p.relative_error(&x).min(1e3),
                Err(_) => 1e3,
            };
            svd_total += err;
        }
        assert!(
            sgd_total < svd_total,
            "sgd mean {} not better than svd mean {}",
            sgd_total / runs as f64,
            svd_total / runs as f64
        );
    }

    #[test]
    fn random_with_condition_hits_target() {
        let mut rng = StdRng::seed_from_u64(3);
        for &target in &[10.0, 1e3] {
            let p = LeastSquares::random_with_condition(&mut rng, 20, 5, target);
            let cond = condition_number(p.a()).expect("full rank");
            assert!(
                (cond / target - 1.0).abs() < 0.05,
                "target {target}, got {cond}"
            );
        }
    }

    #[test]
    fn relative_error_handles_non_finite() {
        let p = paper_problem();
        assert_eq!(p.relative_error(&[f64::NAN; 10]), f64::INFINITY);
        assert_eq!(p.residual_norm(&[f64::INFINITY; 10]), f64::INFINITY);
        assert!(p.relative_error(&p.ideal()) < 1e-12);
    }

    #[test]
    fn constructors_validate() {
        assert!(LeastSquares::new(Matrix::zeros(2, 3), vec![0.0; 2]).is_err());
        assert!(LeastSquares::new(Matrix::zeros(3, 2), vec![0.0; 2]).is_err());
        assert!(LeastSquares::from_rows(&[&[1.0], &[1.0, 2.0]], vec![0.0; 2]).is_err());
    }

    #[test]
    fn cg_converges_faster_than_sgd_in_flops() {
        let p = paper_problem();
        let mut fpu_cg = ReliableFpu::new();
        let cg = p.solve_cg(10, &mut fpu_cg);
        let mut fpu_sgd = ReliableFpu::new();
        let sgd = p.solve_sgd_default(&mut fpu_sgd);
        assert!(p.relative_error(&cg.x) <= p.relative_error(&sgd.x) + 1e-9);
        assert!(
            cg.flops < sgd.flops / 10,
            "cg {} vs sgd {}",
            cg.flops,
            sgd.flops
        );
    }
}
