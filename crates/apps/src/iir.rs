//! IIR filtering (§4.2): the recursive direct form "accrues noise in x as t
//! grows" on a stochastic processor; the robust form observes that the
//! output must satisfy the post-condition `B x = A u` (banded convolution
//! matrices built from the taps) and minimizes `f(x) = ‖Bx − Au‖²`.
//!
//! "In experiments, we use the standard noisy feed-forward technique to
//! generate the initial iterate for the stochastic least squares solver."

use rand::{Rng, RngExt};
use robustify_core::{
    CoreError, CostFunction, RobustProblem, Sgd, SolveReport, SolverSpec, Verdict,
};
use robustify_linalg::BandedMatrix;
use stochastic_fpu::{Fpu, ReliableFpu};

/// An IIR filter with transfer function
/// `H(z) = (Σ aᵢ z⁻ⁱ) / (Σ bᵢ z⁻ⁱ)`.
///
/// # Examples
///
/// ```
/// use robustify_apps::iir::IirFilter;
/// use stochastic_fpu::ReliableFpu;
///
/// # fn main() -> Result<(), robustify_core::CoreError> {
/// // A one-pole lowpass: y[t] = u[t] + 0.5 y[t-1].
/// let filter = IirFilter::new(vec![1.0], vec![1.0, -0.5])?;
/// let y = filter.apply_direct(&mut ReliableFpu::new(), &[1.0, 0.0, 0.0]);
/// assert_eq!(y, vec![1.0, 0.5, 0.25]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct IirFilter {
    /// Feed-forward (numerator) taps `a₀ … aₙ`.
    a: Vec<f64>,
    /// Feedback (denominator) taps `b₀ … bₘ` with `b₀ ≠ 0`.
    b: Vec<f64>,
}

impl IirFilter {
    /// Creates a filter from numerator taps `a` and denominator taps `b`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if either tap vector is empty,
    /// contains non-finite values, or `b[0] == 0`.
    pub fn new(a: Vec<f64>, b: Vec<f64>) -> Result<Self, CoreError> {
        if a.is_empty() || b.is_empty() {
            return Err(CoreError::invalid_config("tap vectors must be non-empty"));
        }
        if a.iter().chain(&b).any(|t| !t.is_finite()) {
            return Err(CoreError::invalid_config("taps must be finite"));
        }
        if b[0] == 0.0 {
            return Err(CoreError::invalid_config(
                "leading denominator tap b0 must be non-zero",
            ));
        }
        Ok(IirFilter { a, b })
    }

    /// Generates a random *stable* filter with `2 * pairs + 1` denominator
    /// taps (poles are conjugate pairs with radius in `[0.3, 0.85)`) and
    /// `numerator_taps` feed-forward taps — the paper's 10-tap filters use
    /// `pairs = 4`, `numerator_taps = 2` (9 + 2 ≈ 10 taps total).
    ///
    /// # Panics
    ///
    /// Panics if `numerator_taps == 0`.
    pub fn random_stable<R: Rng>(rng: &mut R, pairs: usize, numerator_taps: usize) -> Self {
        assert!(numerator_taps > 0, "need at least one numerator tap");
        // Denominator = Π (1 − 2 r cosθ z⁻¹ + r² z⁻²): poles strictly
        // inside the unit circle make the filter stable.
        let mut b = vec![1.0];
        for _ in 0..pairs {
            let r: f64 = rng.random_range(0.3..0.85);
            let theta: f64 = rng.random_range(0.0..std::f64::consts::PI);
            // detlint::allow(fpu-routing, reason = "filter synthesis is reliable problem construction")
            let quad = [1.0, -2.0 * r * theta.cos(), r * r];
            b = convolve(&b, &quad);
        }
        let a = (0..numerator_taps)
            .map(|_| rng.random_range(-1.0..1.0))
            .collect();
        Self::new(a, b).expect("constructed taps are finite with b0 = 1")
    }

    /// Numerator taps.
    pub fn numerator(&self) -> &[f64] {
        &self.a
    }

    /// Denominator taps.
    pub fn denominator(&self) -> &[f64] {
        &self.b
    }

    /// The baseline: the feed-forward recursion
    /// `x[t] = (Σᵢ aᵢ u[t−i] − Σᵢ≥₁ bᵢ x[t−i]) / b₀`
    /// executed through the (possibly faulty) FPU. Errors accumulate in the
    /// recursion state — the instability the robust form removes.
    pub fn apply_direct<F: Fpu>(&self, fpu: &mut F, u: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; u.len()];
        for t in 0..u.len() {
            let mut acc = 0.0;
            for (i, &ai) in self.a.iter().enumerate() {
                if t >= i {
                    let p = fpu.mul(ai, u[t - i]);
                    acc = fpu.add(acc, p);
                }
            }
            for (i, &bi) in self.b.iter().enumerate().skip(1) {
                if t >= i {
                    let p = fpu.mul(bi, x[t - i]);
                    acc = fpu.sub(acc, p);
                }
            }
            x[t] = fpu.div(acc, self.b[0]);
        }
        x
    }

    /// The exact output, computed reliably (the experiment's ground truth).
    pub fn reference(&self, u: &[f64]) -> Vec<f64> {
        self.apply_direct(&mut ReliableFpu::new(), u)
    }

    /// Builds the robust variational form: the banded matrices `(B, A u)`
    /// such that the desired output minimizes `‖B x − A u‖²` (paper
    /// eqs. 4.1–4.2).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the signal is shorter than
    /// the tap vectors.
    pub fn to_least_squares(&self, u: &[f64]) -> Result<(BandedMatrix, Vec<f64>), CoreError> {
        let t = u.len();
        if t < self.a.len() || t < self.b.len() {
            return Err(CoreError::invalid_config(format!(
                "signal of length {t} shorter than the filter taps"
            )));
        }
        let a_mat = BandedMatrix::convolution(t, &self.a)?;
        let b_mat = BandedMatrix::convolution(t, &self.b)?;
        // rhs = A u computed reliably: it is part of the problem statement,
        // not of the iterative solve.
        let au = a_mat.matvec(&mut ReliableFpu::new(), u)?;
        Ok((b_mat, au))
    }

    /// Solves the robust form with SGD, seeding the iterate with the noisy
    /// feed-forward output as in the paper.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the signal is shorter than
    /// the tap vectors.
    pub fn solve_sgd<F: Fpu>(
        &self,
        u: &[f64],
        sgd: &Sgd,
        fpu: &mut F,
    ) -> Result<SolveReport, CoreError> {
        let (b_mat, au) = self.to_least_squares(u)?;
        let x0 = self.warm_start(u, &b_mat, &au, fpu);
        let mut cost = BandedResidualCost::new(b_mat, au);
        Ok(sgd.run(&mut cost, &x0, fpu))
    }

    /// The paper's noisy feed-forward warm start with control-plane
    /// sanitization, for a prebuilt banded system `(B, Au)` over `u`.
    ///
    /// # Panics
    ///
    /// Panics if `b_mat`/`au` were not built for a signal of `u`'s length
    /// (as [`to_least_squares`](IirFilter::to_least_squares) does).
    pub fn warm_start<F: Fpu>(
        &self,
        u: &[f64],
        b_mat: &BandedMatrix,
        au: &[f64],
        fpu: &mut F,
    ) -> Vec<f64> {
        let mut x0 = self.apply_direct(fpu, u);
        // Control-plane sanitization of the warm start, in two stages.
        //
        // Stage 1 — magnitude cap: the true output obeys
        // `‖y‖∞ ≤ ‖h‖₁ ‖u‖∞` with `h` the filter's impulse response
        // (computed reliably over the signal length). Samples beyond that
        // bound are surely corrupt and would overflow the residual check
        // below; they restart from zero.
        let h = self.reference(&unit_impulse(u.len()));
        // detlint::allow(float-reassociation, reason = "warm-start cap is a reliable control-plane guard")
        let gain: f64 = h.iter().map(|v| v.abs()).sum();
        let peak = u.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        // detlint::allow(fpu-routing, reason = "warm-start cap is a reliable control-plane guard")
        let cap = 1.001 * gain * peak + 1e-9;
        for v in &mut x0 {
            if !v.is_finite() || v.abs() > cap {
                *v = 0.0;
            }
        }
        // Stage 2 — fault rollback: every FPU fault in the feed-forward
        // recursion lands as an additive error on exactly one output sample
        // and then propagates homogeneously through the feedback taps — so
        // the reliable residual `r = B x0 − A u` is a spike train with one
        // spike of height `b0 δ` per fault (and per sample zeroed above).
        // Rolling back the spikes beyond the solver's reach
        // (`e = B⁻¹ r_spikes` by banded forward substitution) removes
        // exactly the corrupt tails a clipped gradient could never walk
        // back within its iteration budget, while sub-threshold faults are
        // left for SGD — the data-plane solve the methodology is about.
        let mut setup = ReliableFpu::new();
        let residual = b_mat
            .residual(&mut setup, &x0, au)
            .expect("warm start dimensions match the banded system");
        let drive = au.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        // A residual spike of height `b0 δ` grows into a tail of peak
        // `≈ δ ‖B⁻¹‖` — resonant filters amplify it well beyond δ — while a
        // clipped-gradient solver moves each component at most
        // `Σ γ_t · max_abs` over its whole budget. 1% of the drive scale
        // keeps the surviving tails inside a typical budget without
        // repairing the small-fault noise SGD is there to absorb.
        // detlint::allow(fpu-routing, reason = "spike threshold is a reliable control-plane guard")
        let threshold = 0.01 * self.b[0].abs() * (1.0 + drive);
        let spikes: Vec<f64> = residual
            .iter()
            .map(|&r| if r.abs() > threshold { r } else { 0.0 })
            .collect();
        if spikes.iter().any(|&s| s != 0.0) {
            let tails = b_mat
                .forward_solve(&mut setup, &spikes)
                .expect("spike vector matches the banded system");
            for (x, e) in x0.iter_mut().zip(&tails) {
                *x -= e;
            }
        }
        for v in &mut x0 {
            if !v.is_finite() {
                *v = 0.0;
            }
        }
        x0
    }

    /// A stable initial step size for the banded least squares solve:
    /// `1 / σ_max(B)²`, with `σ_max` estimated by a short reliable power
    /// iteration on `BᵀB` over a length-`t` signal (control-plane setup).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if `t` is shorter than the tap
    /// vectors.
    pub fn default_gamma0(&self, t: usize) -> Result<f64, CoreError> {
        if t < self.a.len() || t < self.b.len() {
            return Err(CoreError::invalid_config(format!(
                "signal of length {t} shorter than the filter taps"
            )));
        }
        let b_mat = BandedMatrix::convolution(t, &self.b)?;
        let mut fpu = ReliableFpu::new();
        // detlint::allow(fpu-routing, reason = "gain estimate runs on an explicit ReliableFpu")
        let mut v: Vec<f64> = (0..t).map(|i| 1.0 + 0.01 * (i % 7) as f64).collect();
        let mut lambda: f64 = 1.0;
        for _ in 0..20 {
            let bv = b_mat.matvec(&mut fpu, &v)?;
            let btbv = b_mat.matvec_t(&mut fpu, &bv)?;
            lambda = robustify_linalg::norm2(&mut fpu, &btbv);
            if lambda == 0.0 {
                return Ok(1.0);
            }
            v = btbv.iter().map(|&x| x / lambda).collect();
        }
        // detlint::allow(fpu-routing, reason = "gain estimate runs on an explicit ReliableFpu")
        Ok(1.0 / lambda)
    }

    /// The paper's quality metric for IIR: the ratio of error energy to
    /// output signal energy `‖y − y_ref‖ / ‖y_ref‖` (native measurement;
    /// non-finite outputs yield `∞`).
    pub fn error_to_signal(&self, y: &[f64], y_ref: &[f64]) -> f64 {
        if y.len() != y_ref.len() || y.iter().any(|v| !v.is_finite()) {
            return f64::INFINITY;
        }
        // Overflow-safe scaled norm: corrupted outputs can hold entries
        // around 1e200 whose square overflows; factor out the max first.
        let scaled_norm = |it: &mut dyn Iterator<Item = f64>| -> f64 {
            let vals: Vec<f64> = it.collect();
            let max = vals.iter().fold(0.0f64, |m, v| m.max(v.abs()));
            if max == 0.0 {
                return 0.0;
            }
            // detlint::allow(float-reassociation, reason = "error-to-signal metric is reliable verification arithmetic")
            let ssq: f64 = vals.iter().map(|v| (v / max) * (v / max)).sum();
            // detlint::allow(fpu-routing, reason = "error-to-signal metric is reliable verification arithmetic")
            max * ssq.sqrt()
        };
        let err = scaled_norm(&mut y.iter().zip(y_ref).map(|(a, b)| a - b));
        let sig = scaled_norm(&mut y_ref.iter().copied());
        err / sig.max(1e-300)
    }
}

/// The banded least squares cost `‖B x − rhs‖²` with gradient
/// `2 Bᵀ (B x − rhs)`, evaluated in `O(t · band)` per call.
///
/// # Examples
///
/// ```
/// use robustify_apps::iir::BandedResidualCost;
/// use robustify_core::CostFunction;
/// use robustify_linalg::BandedMatrix;
/// use stochastic_fpu::ReliableFpu;
///
/// # fn main() -> Result<(), robustify_core::CoreError> {
/// let b = BandedMatrix::convolution(3, &[1.0])?;
/// let cost = BandedResidualCost::new(b, vec![1.0, 2.0, 3.0]);
/// assert_eq!(cost.cost(&[1.0, 2.0, 3.0], &mut ReliableFpu::new()), 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BandedResidualCost {
    b: BandedMatrix,
    rhs: Vec<f64>,
}

impl BandedResidualCost {
    /// Creates the cost for the banded system `(B, rhs)`.
    ///
    /// # Panics
    ///
    /// Panics if `rhs.len() != b.dim()`.
    pub fn new(b: BandedMatrix, rhs: Vec<f64>) -> Self {
        assert_eq!(
            rhs.len(),
            b.dim(),
            "rhs length must match the matrix dimension"
        );
        BandedResidualCost { b, rhs }
    }

    /// The banded system matrix `B`.
    pub fn matrix(&self) -> &BandedMatrix {
        &self.b
    }

    /// The right-hand side `Au`.
    pub fn rhs(&self) -> &[f64] {
        &self.rhs
    }

    fn residual<F: Fpu>(&self, x: &[f64], fpu: &mut F) -> Vec<f64> {
        let mut r = self.b.matvec(fpu, x).expect("x has dim() entries");
        fpu.sub_assign_batch(&self.rhs, &mut r);
        r
    }
}

/// An IIR filtering task bound to a concrete input signal — the
/// [`RobustProblem`] form of §4.2.
///
/// # Examples
///
/// ```
/// use robustify_apps::iir::{IirFilter, IirProblem};
/// use robustify_core::{RobustProblem, SolverSpec, StepSchedule};
/// use stochastic_fpu::ReliableFpu;
///
/// # fn main() -> Result<(), robustify_core::CoreError> {
/// let filter = IirFilter::new(vec![1.0], vec![1.0, -0.5])?;
/// let problem = IirProblem::new(filter, vec![1.0, 0.0, 0.0, 0.0])?;
/// let spec = SolverSpec::sgd(200, StepSchedule::Sqrt { gamma0: problem.default_gamma0() });
/// let out = problem.solve(&spec, &mut ReliableFpu::new())?;
/// let verdict = problem.verify(&out.solution.expect("sgd decodes"));
/// assert!(verdict.success);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct IirProblem {
    filter: IirFilter,
    u: Vec<f64>,
    y_ref: Vec<f64>,
}

impl IirProblem {
    /// The success threshold on the error-to-signal ratio: at most 5% of
    /// the output energy may be error for a trial to count as a success.
    pub const SUCCESS_TOLERANCE: f64 = 0.05;

    /// Binds `filter` to the input signal `u`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the signal is shorter than
    /// the filter taps.
    pub fn new(filter: IirFilter, u: Vec<f64>) -> Result<Self, CoreError> {
        // Validate the banded system once so the trait methods (which
        // cannot fail) can build it with `expect`.
        let _ = filter.to_least_squares(&u)?;
        let y_ref = filter.reference(&u);
        Ok(IirProblem { filter, u, y_ref })
    }

    /// The filter.
    pub fn filter(&self) -> &IirFilter {
        &self.filter
    }

    /// The input signal.
    pub fn input(&self) -> &[f64] {
        &self.u
    }

    /// A stable initial step size for this signal length (see
    /// [`IirFilter::default_gamma0`]).
    pub fn default_gamma0(&self) -> f64 {
        self.filter
            .default_gamma0(self.u.len())
            .expect("signal length validated at construction")
    }
}

impl RobustProblem for IirProblem {
    type Solution = Vec<f64>;
    type Cost = BandedResidualCost;

    fn name(&self) -> &'static str {
        "iir"
    }

    fn cost(&self) -> Self::Cost {
        let (b_mat, au) = self
            .filter
            .to_least_squares(&self.u)
            .expect("signal length validated at construction");
        BandedResidualCost::new(b_mat, au)
    }

    fn initial_iterate<F: Fpu>(&self, cost: &Self::Cost, fpu: &mut F) -> Vec<f64> {
        self.filter
            .warm_start(&self.u, cost.matrix(), cost.rhs(), fpu)
    }

    fn decode(&self, _cost: &Self::Cost, x: &[f64]) -> Vec<f64> {
        x.to_vec()
    }

    fn reference(&self) -> Vec<f64> {
        self.y_ref.clone()
    }

    fn verify(&self, solution: &Vec<f64>) -> Verdict {
        Verdict::from_metric(
            self.filter.error_to_signal(solution, &self.y_ref),
            Self::SUCCESS_TOLERANCE,
        )
    }

    fn baseline<F: Fpu>(&self, _spec: &SolverSpec, fpu: &mut F) -> Option<Vec<f64>> {
        Some(self.filter.apply_direct(fpu, &self.u))
    }
}

impl CostFunction for BandedResidualCost {
    fn dim(&self) -> usize {
        self.b.dim()
    }

    fn cost<F: Fpu>(&self, x: &[f64], fpu: &mut F) -> f64 {
        let r = self.residual(x, fpu);
        robustify_linalg::norm2_sq(fpu, &r)
    }

    fn gradient<F: Fpu>(&self, x: &[f64], fpu: &mut F, grad: &mut [f64]) {
        let r = self.residual(x, fpu);
        let btr = self.b.matvec_t(fpu, &r).expect("r has dim() entries");
        // grad = 2·Bᵀr, batched (the copy is data movement, not a FLOP).
        grad.copy_from_slice(&btr);
        fpu.scale_batch(2.0, grad);
    }
}

/// A length-`t` unit impulse — probe signal for the reliable impulse
/// response used to bound the warm start.
fn unit_impulse(t: usize) -> Vec<f64> {
    let mut e = vec![0.0; t];
    if let Some(first) = e.first_mut() {
        *first = 1.0;
    }
    e
}

/// Polynomial (tap) convolution with native arithmetic — used only during
/// workload generation.
fn convolve(p: &[f64], q: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; p.len() + q.len() - 1];
    for (i, &pi) in p.iter().enumerate() {
        for (j, &qj) in q.iter().enumerate() {
            out[i + j] += pi * qj;
        }
    }
    out
}

/// Generates a random input signal of length `t` with entries in `[-1, 1)`.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use robustify_apps::iir::random_signal;
///
/// let u = random_signal(&mut StdRng::seed_from_u64(1), 500);
/// assert_eq!(u.len(), 500);
/// ```
pub fn random_signal<R: Rng>(rng: &mut R, t: usize) -> Vec<f64> {
    (0..t).map(|_| rng.random_range(-1.0..1.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use robustify_core::StepSchedule;
    use stochastic_fpu::{BitFaultModel, FaultRate, NoisyFpu};

    fn lowpass() -> IirFilter {
        IirFilter::new(vec![0.5, 0.5], vec![1.0, -0.3]).expect("valid taps")
    }

    #[test]
    fn direct_form_matches_hand_computation() {
        let f = IirFilter::new(vec![1.0], vec![1.0, -0.5]).expect("valid taps");
        let y = f.apply_direct(&mut ReliableFpu::new(), &[1.0, 0.0, 0.0, 0.0]);
        assert_eq!(y, vec![1.0, 0.5, 0.25, 0.125]);
    }

    #[test]
    fn variational_form_is_satisfied_by_reference_output() {
        let f = lowpass();
        let u = random_signal(&mut StdRng::seed_from_u64(2), 50);
        let y = f.reference(&u);
        let (b_mat, au) = f.to_least_squares(&u).expect("signal long enough");
        let cost = BandedResidualCost::new(b_mat, au);
        assert!(
            cost.cost(&y, &mut ReliableFpu::new()) < 1e-18,
            "reference output does not satisfy Bx = Au"
        );
    }

    #[test]
    fn banded_cost_gradient_matches_finite_difference() {
        let f = lowpass();
        let u = random_signal(&mut StdRng::seed_from_u64(3), 10);
        let (b_mat, au) = f.to_least_squares(&u).expect("signal long enough");
        let cost = BandedResidualCost::new(b_mat, au);
        let x: Vec<f64> = (0..10).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut fpu = ReliableFpu::new();
        let mut grad = vec![0.0; 10];
        cost.gradient(&x, &mut fpu, &mut grad);
        let h = 1e-6;
        for i in 0..10 {
            let mut xp = x.clone();
            let mut xm = x.clone();
            xp[i] += h;
            xm[i] -= h;
            let fd = (cost.cost(&xp, &mut fpu) - cost.cost(&xm, &mut fpu)) / (2.0 * h);
            assert!((grad[i] - fd).abs() < 1e-4 * (1.0 + fd.abs()), "lane {i}");
        }
    }

    #[test]
    fn sgd_refines_noisy_warm_start() {
        let f = lowpass();
        let u = random_signal(&mut StdRng::seed_from_u64(4), 100);
        let y_ref = f.reference(&u);
        let mut fpu = NoisyFpu::new(FaultRate::per_flop(0.02), BitFaultModel::emulated(), 5);
        let baseline = f.apply_direct(&mut fpu, &u);
        let baseline_err = f.error_to_signal(&baseline, &y_ref);
        let mut fpu = NoisyFpu::new(FaultRate::per_flop(0.02), BitFaultModel::emulated(), 5);
        let sgd = Sgd::new(800, StepSchedule::Linear { gamma0: 0.2 });
        let report = f.solve_sgd(&u, &sgd, &mut fpu).expect("signal long enough");
        let robust_err = f.error_to_signal(&report.x, &y_ref);
        assert!(
            robust_err < baseline_err,
            "robust {robust_err} not better than baseline {baseline_err}"
        );
    }

    #[test]
    fn random_stable_filters_do_not_blow_up() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..10 {
            let f = IirFilter::random_stable(&mut rng, 4, 2);
            assert_eq!(f.denominator().len(), 9);
            let u = random_signal(&mut rng, 400);
            let y = f.reference(&u);
            let max = y.iter().fold(0.0f64, |m, v| m.max(v.abs()));
            assert!(max < 1e4, "unstable output, max |y| = {max}");
        }
    }

    #[test]
    fn error_to_signal_metric() {
        let f = lowpass();
        let y_ref = vec![3.0, 4.0];
        assert_eq!(f.error_to_signal(&y_ref, &y_ref), 0.0);
        assert_eq!(f.error_to_signal(&[f64::NAN, 0.0], &y_ref), f64::INFINITY);
        assert_eq!(
            f.error_to_signal(&[0.0], &y_ref),
            f64::INFINITY,
            "length mismatch"
        );
        assert!((f.error_to_signal(&[3.0, 5.0], &y_ref) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn constructors_validate() {
        assert!(IirFilter::new(vec![], vec![1.0]).is_err());
        assert!(IirFilter::new(vec![1.0], vec![]).is_err());
        assert!(IirFilter::new(vec![1.0], vec![0.0, 1.0]).is_err());
        assert!(IirFilter::new(vec![f64::NAN], vec![1.0]).is_err());
        let f = lowpass();
        assert!(
            f.to_least_squares(&[1.0]).is_err(),
            "signal shorter than taps"
        );
    }
}
