//! Seeded trial runners for the experiment harness (Chapter 5 methodology).
//!
//! **Deprecated shim.** The serial per-figure loops this module powered now
//! live in [`robustify_engine`], which executes the same grids in parallel
//! with identical per-trial *fault-stream* seeding
//! ([`robustify_engine::derive_trial_seed`] keeps the exact SplitMix
//! derivation [`TrialConfig::fpu_for_trial`] introduced). Workload seeds
//! are standardized on [`robustify_engine::problem_seed`]; figure binaries
//! that previously used a bespoke multiplier (the matching figures) draw
//! different random workload instances than their earliest recordings.
//! [`TrialConfig`] remains as a thin compatibility wrapper for existing
//! callers and doctests; new code should build a
//! [`robustify_engine::SweepSpec`] instead.
//!
//! **Delete-readiness (PR 3):** a workspace-wide grep confirms no in-repo
//! code outside this module constructs a [`TrialConfig`] any more — every
//! example, test and figure binary runs trials through
//! [`RobustProblem::run_trial`](robustify_core::RobustProblem::run_trial)
//! / the engine. The shim is kept for exactly one more PR as
//! external-caller courtesy and can then be removed wholesale.

use stochastic_fpu::{BitFaultModel, FaultRate, NoisyFpu};

pub use robustify_engine::{extended_fault_rates, paper_fault_rates, MetricSummary};

/// Configuration for one sweep point: how many trials, at what fault rate,
/// with which bit-fault model.
///
/// # Examples
///
/// ```
/// use robustify_apps::harness::TrialConfig;
/// use stochastic_fpu::{BitFaultModel, FaultRate};
///
/// let cfg = TrialConfig::new(100, FaultRate::percent_of_flops(1.0), BitFaultModel::emulated(), 42);
/// let rate = cfg.success_rate(|fpu| {
///     use stochastic_fpu::Fpu;
///     fpu.add(1.0, 1.0) == 2.0
/// });
/// assert!((0.0..=100.0).contains(&rate));
/// ```
#[deprecated(
    since = "0.1.0",
    note = "build a `robustify_engine::SweepSpec` sweep instead; this shim runs serially"
)]
#[derive(Debug, Clone, PartialEq)]
pub struct TrialConfig {
    trials: usize,
    rate: FaultRate,
    model: BitFaultModel,
    base_seed: u64,
}

#[allow(deprecated)]
impl TrialConfig {
    /// Creates a sweep-point configuration.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0`.
    pub fn new(trials: usize, rate: FaultRate, model: BitFaultModel, base_seed: u64) -> Self {
        assert!(trials > 0, "need at least one trial");
        TrialConfig {
            trials,
            rate,
            model,
            base_seed,
        }
    }

    /// Number of trials per point.
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// The fault rate of this point.
    pub fn rate(&self) -> FaultRate {
        self.rate
    }

    /// The FPU for trial index `i` (deterministic per base seed; the same
    /// derivation the parallel engine uses).
    pub fn fpu_for_trial(&self, i: usize) -> NoisyFpu {
        let seed = robustify_engine::derive_trial_seed(self.base_seed, i as u64);
        NoisyFpu::new(self.rate, self.model.clone(), seed)
    }

    /// Runs `trial` once per seed and returns the success percentage in
    /// `[0, 100]` — the y-axis of Figures 6.1, 6.4 and 6.5.
    pub fn success_rate(&self, mut trial: impl FnMut(&mut NoisyFpu) -> bool) -> f64 {
        let mut successes = 0usize;
        for i in 0..self.trials {
            let mut fpu = self.fpu_for_trial(i);
            if trial(&mut fpu) {
                successes += 1;
            }
        }
        100.0 * successes as f64 / self.trials as f64
    }

    /// Runs `trial` once per seed and returns the [`MetricSummary`] of the
    /// returned quality metric — the y-axis of Figures 6.2, 6.3 and 6.6
    /// (lower is better; non-finite outcomes are tallied as failures).
    pub fn metric_summary(&self, mut trial: impl FnMut(&mut NoisyFpu) -> f64) -> MetricSummary {
        let mut values = Vec::with_capacity(self.trials);
        let mut failures = 0usize;
        for i in 0..self.trials {
            let mut fpu = self.fpu_for_trial(i);
            let v = trial(&mut fpu);
            if v.is_finite() {
                values.push(v);
            } else {
                failures += 1;
            }
        }
        MetricSummary::from_values(values, failures)
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use stochastic_fpu::Fpu;

    fn config(trials: usize) -> TrialConfig {
        TrialConfig::new(
            trials,
            FaultRate::per_flop(0.5),
            BitFaultModel::emulated(),
            7,
        )
    }

    #[test]
    fn success_rate_bounds() {
        let cfg = config(50);
        assert_eq!(cfg.success_rate(|_| true), 100.0);
        assert_eq!(cfg.success_rate(|_| false), 0.0);
    }

    /// Advances the FPU a few ops and fingerprints the (fault-perturbed)
    /// results, distinguishing fault streams without exposing internals.
    fn stream_fingerprint(fpu: &mut NoisyFpu) -> u64 {
        let mut acc = 0u64;
        for i in 0..32 {
            acc = acc.rotate_left(7) ^ fpu.add(i as f64, 0.125).to_bits();
        }
        acc
    }

    #[test]
    fn trials_are_deterministic_and_distinct() {
        let cfg = config(10);
        let a: Vec<u64> = (0..10)
            .map(|i| stream_fingerprint(&mut cfg.fpu_for_trial(i)))
            .collect();
        let b: Vec<u64> = (0..10)
            .map(|i| stream_fingerprint(&mut cfg.fpu_for_trial(i)))
            .collect();
        assert_eq!(a, b, "same seeds give same streams");
        let distinct: std::collections::HashSet<u64> = a.iter().copied().collect();
        assert!(distinct.len() >= 9, "per-trial streams should differ");
    }

    #[test]
    fn shim_seeding_matches_the_engine() {
        // The compatibility guarantee: the shim's trial FPUs are seeded by
        // the exact engine derivation, so serial and engine sweeps replay
        // the same fault streams.
        let cfg = config(3);
        for i in 0..3u64 {
            let mut ours = cfg.fpu_for_trial(i as usize);
            let mut engines = NoisyFpu::new(
                FaultRate::per_flop(0.5),
                BitFaultModel::emulated(),
                robustify_engine::derive_trial_seed(7, i),
            );
            assert_eq!(
                stream_fingerprint(&mut ours),
                stream_fingerprint(&mut engines)
            );
        }
    }

    #[test]
    fn metric_summary_counts_non_finite_trials() {
        let cfg = config(10);
        let mut k = 0;
        let s = cfg.metric_summary(|fpu| {
            k += 1;
            let _ = fpu.add(1.0, 1.0);
            if k % 2 == 0 {
                f64::NAN
            } else {
                k as f64
            }
        });
        assert_eq!(s.failures, 5);
        assert_eq!(s.count(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_panics() {
        TrialConfig::new(0, FaultRate::ZERO, BitFaultModel::emulated(), 1);
    }
}
