//! Seeded trial runners for the experiment harness (Chapter 5 methodology).
//!
//! Each experiment point is "success rate (or error) at fault rate r": run
//! `trials` independent solves, each with a freshly seeded fault-injecting
//! FPU, and aggregate. Seeds are derived deterministically from a base seed
//! so every figure is exactly reproducible.

use stochastic_fpu::{BitFaultModel, FaultRate, NoisyFpu};

/// Configuration for one sweep point: how many trials, at what fault rate,
/// with which bit-fault model.
///
/// # Examples
///
/// ```
/// use robustify_apps::harness::TrialConfig;
/// use stochastic_fpu::{BitFaultModel, FaultRate};
///
/// let cfg = TrialConfig::new(100, FaultRate::percent_of_flops(1.0), BitFaultModel::emulated(), 42);
/// let rate = cfg.success_rate(|fpu| {
///     use stochastic_fpu::Fpu;
///     fpu.add(1.0, 1.0) == 2.0
/// });
/// assert!((0.0..=100.0).contains(&rate));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TrialConfig {
    trials: usize,
    rate: FaultRate,
    model: BitFaultModel,
    base_seed: u64,
}

impl TrialConfig {
    /// Creates a sweep-point configuration.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0`.
    pub fn new(trials: usize, rate: FaultRate, model: BitFaultModel, base_seed: u64) -> Self {
        assert!(trials > 0, "need at least one trial");
        TrialConfig {
            trials,
            rate,
            model,
            base_seed,
        }
    }

    /// Number of trials per point.
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// The fault rate of this point.
    pub fn rate(&self) -> FaultRate {
        self.rate
    }

    /// The FPU for trial index `i` (deterministic per base seed).
    pub fn fpu_for_trial(&self, i: usize) -> NoisyFpu {
        // SplitMix-style seed derivation keeps per-trial streams decorrelated.
        let seed = self
            .base_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((i as u64 + 1).wrapping_mul(0xBF58_476D_1CE4_E5B9));
        NoisyFpu::new(self.rate, self.model.clone(), seed)
    }

    /// Runs `trial` once per seed and returns the success percentage in
    /// `[0, 100]` — the y-axis of Figures 6.1, 6.4 and 6.5.
    pub fn success_rate(&self, mut trial: impl FnMut(&mut NoisyFpu) -> bool) -> f64 {
        let mut successes = 0usize;
        for i in 0..self.trials {
            let mut fpu = self.fpu_for_trial(i);
            if trial(&mut fpu) {
                successes += 1;
            }
        }
        100.0 * successes as f64 / self.trials as f64
    }

    /// Runs `trial` once per seed and returns the [`MetricSummary`] of the
    /// returned quality metric — the y-axis of Figures 6.2, 6.3 and 6.6
    /// (lower is better; non-finite outcomes are tallied as failures).
    pub fn metric_summary(&self, mut trial: impl FnMut(&mut NoisyFpu) -> f64) -> MetricSummary {
        let mut values = Vec::with_capacity(self.trials);
        let mut failures = 0usize;
        for i in 0..self.trials {
            let mut fpu = self.fpu_for_trial(i);
            let v = trial(&mut fpu);
            if v.is_finite() {
                values.push(v);
            } else {
                failures += 1;
            }
        }
        MetricSummary::from_values(values, failures)
    }
}

/// Aggregate statistics of a quality metric over a batch of trials.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSummary {
    /// Finite metric values, sorted ascending.
    values: Vec<f64>,
    /// Trials whose metric was non-finite (breakdowns, NaN outputs).
    pub failures: usize,
}

impl MetricSummary {
    /// Builds a summary from raw values (non-finite entries should already
    /// have been counted into `failures`).
    pub fn from_values(mut values: Vec<f64>, failures: usize) -> Self {
        values.sort_by(|a, b| a.partial_cmp(b).expect("values are finite"));
        MetricSummary { values, failures }
    }

    /// Number of trials with a finite metric.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// Geometric-mean-friendly central tendency: the median of the finite
    /// values, or `∞` when every trial failed.
    pub fn median(&self) -> f64 {
        if self.values.is_empty() {
            return f64::INFINITY;
        }
        let n = self.values.len();
        if n % 2 == 1 {
            self.values[n / 2]
        } else {
            0.5 * (self.values[n / 2 - 1] + self.values[n / 2])
        }
    }

    /// The arithmetic mean of the finite values, or `∞` when every trial
    /// failed.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return f64::INFINITY;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// The worst finite value, or `∞` when every trial failed.
    pub fn max(&self) -> f64 {
        self.values.last().copied().unwrap_or(f64::INFINITY)
    }

    /// Fraction of all trials (finite + failed) that failed, in `[0, 1]`.
    pub fn failure_fraction(&self) -> f64 {
        let total = self.values.len() + self.failures;
        if total == 0 {
            0.0
        } else {
            self.failures as f64 / total as f64
        }
    }
}

/// The fault-rate sweep used by the paper's accuracy figures, as
/// percentages of FLOPs: `0.1, 0.5, 1, 2, 5, 10`.
pub fn paper_fault_rates() -> Vec<f64> {
    vec![0.1, 0.5, 1.0, 2.0, 5.0, 10.0]
}

/// The extended sweep of Figure 6.5 (`0–50%` of FLOPs).
pub fn extended_fault_rates() -> Vec<f64> {
    vec![0.0, 1.0, 5.0, 10.0, 20.0, 30.0, 40.0, 50.0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use stochastic_fpu::Fpu;

    fn config(trials: usize) -> TrialConfig {
        TrialConfig::new(
            trials,
            FaultRate::per_flop(0.5),
            BitFaultModel::emulated(),
            7,
        )
    }

    #[test]
    fn success_rate_bounds() {
        let cfg = config(50);
        assert_eq!(cfg.success_rate(|_| true), 100.0);
        assert_eq!(cfg.success_rate(|_| false), 0.0);
    }

    /// Advances the FPU a few ops and fingerprints the (fault-perturbed)
    /// results, distinguishing fault streams without exposing internals.
    fn stream_fingerprint(fpu: &mut NoisyFpu) -> u64 {
        let mut acc = 0u64;
        for i in 0..32 {
            acc = acc.rotate_left(7) ^ fpu.add(i as f64, 0.125).to_bits();
        }
        acc
    }

    #[test]
    fn trials_are_deterministic_and_distinct() {
        let cfg = config(10);
        let a: Vec<u64> = (0..10)
            .map(|i| stream_fingerprint(&mut cfg.fpu_for_trial(i)))
            .collect();
        let b: Vec<u64> = (0..10)
            .map(|i| stream_fingerprint(&mut cfg.fpu_for_trial(i)))
            .collect();
        assert_eq!(a, b, "same seeds give same streams");
        let distinct: std::collections::HashSet<u64> = a.iter().copied().collect();
        assert!(distinct.len() >= 9, "per-trial streams should differ");
    }

    #[test]
    fn metric_summary_statistics() {
        let s = MetricSummary::from_values(vec![3.0, 1.0, 2.0], 1);
        assert_eq!(s.median(), 2.0);
        assert_eq!(s.mean(), 2.0);
        assert_eq!(s.max(), 3.0);
        assert_eq!(s.count(), 3);
        assert_eq!(s.failure_fraction(), 0.25);
        let even = MetricSummary::from_values(vec![1.0, 3.0], 0);
        assert_eq!(even.median(), 2.0);
    }

    #[test]
    fn all_failed_summary_is_infinite() {
        let s = MetricSummary::from_values(vec![], 5);
        assert_eq!(s.median(), f64::INFINITY);
        assert_eq!(s.mean(), f64::INFINITY);
        assert_eq!(s.failure_fraction(), 1.0);
    }

    #[test]
    fn metric_summary_counts_non_finite_trials() {
        let cfg = config(10);
        let mut k = 0;
        let s = cfg.metric_summary(|fpu| {
            k += 1;
            let _ = fpu.add(1.0, 1.0);
            if k % 2 == 0 {
                f64::NAN
            } else {
                k as f64
            }
        });
        assert_eq!(s.failures, 5);
        assert_eq!(s.count(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_panics() {
        TrialConfig::new(0, FaultRate::ZERO, BitFaultModel::emulated(), 1);
    }
}
