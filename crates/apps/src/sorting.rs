//! Sorting (§4.3): "among all permutations of the entries of an array
//! `u ∈ Rⁿ`, the one that sorts it in ascending order also maximizes the
//! dot product between the permuted `u` and the array `v = [1 … n]ᵀ`"
//! (Brockett). The permutation is found by solving the LP (4.3) over doubly
//! stochastic matrices; baselines are comparison sorts whose comparisons run
//! through the faulty FPU.

use crate::doubly_stochastic::DoublyStochasticCost;
use rand::{Rng, RngExt};
use robustify_core::{
    CoreError, PenaltyKind, RobustProblem, Sgd, SolveReport, SolverSpec, Verdict,
};
use robustify_linalg::Matrix;
use stochastic_fpu::{Fpu, FpuExt};

/// Sorts by quicksort (Hoare partition), with every comparison executed as
/// an FPU subtraction — the fault-exposed baseline for Figure 6.1 (the
/// paper used the C++ STL sort).
///
/// # Examples
///
/// ```
/// use robustify_apps::sorting::quicksort_baseline;
/// use stochastic_fpu::ReliableFpu;
///
/// let sorted = quicksort_baseline(&mut ReliableFpu::new(), &[3.0, 1.0, 2.0]);
/// assert_eq!(sorted, vec![1.0, 2.0, 3.0]);
/// ```
pub fn quicksort_baseline<F: Fpu>(fpu: &mut F, data: &[f64]) -> Vec<f64> {
    let mut out = data.to_vec();
    if out.len() > 1 {
        quicksort_inner(fpu, &mut out, 0);
    }
    out
}

fn quicksort_inner<F: Fpu>(fpu: &mut F, data: &mut [f64], depth: usize) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    // Depth guard: corrupted comparisons can defeat the divide-and-conquer
    // progress argument; fall back to insertion sort rather than recurse
    // forever (std::sort's introsort does the same against adversarial
    // pivots).
    if depth > 2 * 64 {
        insertion_inner(fpu, data);
        return;
    }
    let pivot = data[n / 2];
    let (mut i, mut j) = (0usize, n - 1);
    loop {
        while fpu.lt(data[i], pivot) && i < n - 1 {
            i += 1;
        }
        while fpu.gt(data[j], pivot) && j > 0 {
            j -= 1;
        }
        if i >= j {
            break;
        }
        data.swap(i, j);
        i += 1;
        j = j.saturating_sub(1);
    }
    let split = (j + 1).clamp(1, n - 1);
    let (left, right) = data.split_at_mut(split);
    quicksort_inner(fpu, left, depth + 1);
    quicksort_inner(fpu, right, depth + 1);
}

/// Sorts by top-down merge sort with FPU comparisons — the alternative
/// recursive baseline the paper names.
///
/// # Examples
///
/// ```
/// use robustify_apps::sorting::mergesort_baseline;
/// use stochastic_fpu::ReliableFpu;
///
/// let sorted = mergesort_baseline(&mut ReliableFpu::new(), &[3.0, 1.0, 2.0]);
/// assert_eq!(sorted, vec![1.0, 2.0, 3.0]);
/// ```
pub fn mergesort_baseline<F: Fpu>(fpu: &mut F, data: &[f64]) -> Vec<f64> {
    let n = data.len();
    if n <= 1 {
        return data.to_vec();
    }
    let mid = n / 2;
    let left = mergesort_baseline(fpu, &data[..mid]);
    let right = mergesort_baseline(fpu, &data[mid..]);
    let mut out = Vec::with_capacity(n);
    let (mut i, mut j) = (0, 0);
    while i < left.len() && j < right.len() {
        if fpu.le(left[i], right[j]) {
            out.push(left[i]);
            i += 1;
        } else {
            out.push(right[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&left[i..]);
    out.extend_from_slice(&right[j..]);
    out
}

/// Sorts by insertion sort with FPU comparisons.
///
/// # Examples
///
/// ```
/// use robustify_apps::sorting::insertion_baseline;
/// use stochastic_fpu::ReliableFpu;
///
/// let sorted = insertion_baseline(&mut ReliableFpu::new(), &[2.0, 1.0]);
/// assert_eq!(sorted, vec![1.0, 2.0]);
/// ```
pub fn insertion_baseline<F: Fpu>(fpu: &mut F, data: &[f64]) -> Vec<f64> {
    let mut out = data.to_vec();
    insertion_inner(fpu, &mut out);
    out
}

fn insertion_inner<F: Fpu>(fpu: &mut F, data: &mut [f64]) {
    for i in 1..data.len() {
        let mut j = i;
        while j > 0 && fpu.gt(data[j - 1], data[j]) {
            data.swap(j - 1, j);
            j -= 1;
        }
    }
}

/// A sorting problem robustified as the LP (4.3) over doubly stochastic
/// matrices.
///
/// # Examples
///
/// ```
/// use robustify_apps::sorting::SortProblem;
/// use robustify_core::{Sgd, StepSchedule};
/// use stochastic_fpu::ReliableFpu;
///
/// # fn main() -> Result<(), robustify_core::CoreError> {
/// let problem = SortProblem::new(vec![3.0, 1.0, 2.0])?;
/// let sgd = Sgd::new(2000, StepSchedule::Sqrt { gamma0: 0.05 });
/// let (sorted, _report) = problem.solve_sgd(&sgd, &mut ReliableFpu::new());
/// assert_eq!(sorted, vec![1.0, 2.0, 3.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SortProblem {
    u: Vec<f64>,
}

impl SortProblem {
    /// Default non-negativity penalty weight `μ₁`.
    pub const DEFAULT_MU1: f64 = 8.0;
    /// Default row/column-sum penalty weight `μ₂`.
    pub const DEFAULT_MU2: f64 = 8.0;

    /// Creates a sorting problem for the array `u`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if `u` is empty or contains
    /// non-finite values.
    pub fn new(u: Vec<f64>) -> Result<Self, CoreError> {
        if u.is_empty() {
            return Err(CoreError::invalid_config("cannot sort an empty array"));
        }
        if u.iter().any(|v| !v.is_finite()) {
            return Err(CoreError::invalid_config("array entries must be finite"));
        }
        Ok(SortProblem { u })
    }

    /// Generates a random array of `n` distinct-ish values in `[-10, 10)`.
    pub fn random<R: Rng>(rng: &mut R, n: usize) -> Self {
        let u = (0..n).map(|_| rng.random_range(-10.0..10.0)).collect();
        Self::new(u).expect("generated entries are finite")
    }

    /// The input array.
    pub fn input(&self) -> &[f64] {
        &self.u
    }

    /// Array length `n`.
    pub fn len(&self) -> usize {
        self.u.len()
    }

    /// Whether the array is empty (never true for a constructed problem).
    pub fn is_empty(&self) -> bool {
        self.u.is_empty()
    }

    /// The penalized cost (paper eq. 4.4) with payoff `Pᵢⱼ = vᵢ ũⱼ`,
    /// `v = [1 … n]/n`.
    ///
    /// `ũ` is the input normalized affinely into `[0.1, 1.1]`. Sorting is
    /// invariant under positive affine maps, and the normalization matters
    /// for correctness, not just step-size transfer: the LP (4.3) uses
    /// `≤ 1` row/column constraints, so a *non-positive* payoff column
    /// would simply never be assigned — the relaxation only recovers the
    /// permutation when every assignment carries positive payoff.
    pub fn robust_cost(&self, mu1: f64, mu2: f64, kind: PenaltyKind) -> DoublyStochasticCost {
        let n = self.len();
        let min = self.u.iter().fold(f64::INFINITY, |m, &v| m.min(v));
        let max = self.u.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v));
        let range = (max - min).max(1e-12);
        let payoff = Matrix::from_fn(n, n, |i, j| {
            // detlint::allow(fpu-routing, reason = "payoff-matrix construction is reliable problem setup")
            let scaled = (self.u[j] - min) / range + 0.1;
            (i + 1) as f64 / n as f64 * scaled
        });
        DoublyStochasticCost::new(payoff, mu1, mu2, kind)
            .expect("default penalty weights are valid")
    }

    /// Solves the robust form with the given SGD configuration and default
    /// penalty weights, decoding the relaxed `X` to a permutation and
    /// returning the permuted (exact) input values.
    pub fn solve_sgd<F: Fpu>(&self, sgd: &Sgd, fpu: &mut F) -> (Vec<f64>, SolveReport) {
        let mut cost = self.robust_cost(Self::DEFAULT_MU1, Self::DEFAULT_MU2, PenaltyKind::Squared);
        let x0 = cost.initial_iterate();
        let report = sgd.run(&mut cost, &x0, fpu);
        let output = self.decode(&cost, &report.x);
        (output, report)
    }

    /// Decodes a relaxed `X` into an output array: greedy assignment, then
    /// the permutation is applied to the original values natively (the
    /// decode is a protected control step). Rows of `X` index *positions*,
    /// columns index *source elements*; unassigned positions (possible under
    /// heavy corruption) are filled with the unused elements in input order,
    /// producing a wrong-but-well-formed output.
    pub fn decode(&self, cost: &DoublyStochasticCost, x: &[f64]) -> Vec<f64> {
        let n = self.len();
        let pairs = cost.decode_assignment(x, 0.25);
        let mut out = vec![f64::NAN; n];
        let mut used = vec![false; n];
        for &(pos, src) in &pairs {
            out[pos] = self.u[src];
            used[src] = true;
        }
        let mut leftovers = (0..n).filter(|&j| !used[j]);
        for slot in out.iter_mut() {
            if slot.is_nan() {
                let j = leftovers.next().expect("one leftover per unassigned slot");
                *slot = self.u[j];
            }
        }
        out
    }

    /// The exact ascending sort (native; the ground truth).
    pub fn sorted_reference(&self) -> Vec<f64> {
        let mut s = self.u.clone();
        s.sort_by(|a, b| a.partial_cmp(b).expect("entries are finite"));
        s
    }

    /// The paper's success criterion: "the percentage of outputs where the
    /// entire array is sorted correctly (any undetermined entries (NaNs),
    /// wrongly sorted number, etc., is considered a failure)".
    pub fn is_success(&self, output: &[f64]) -> bool {
        if output.len() != self.len() {
            return false;
        }
        if output.iter().any(|v| !v.is_finite()) {
            return false;
        }
        output
            .iter()
            .zip(self.sorted_reference())
            .all(|(&a, b)| a == b)
    }
}

impl RobustProblem for SortProblem {
    type Solution = Vec<f64>;
    type Cost = DoublyStochasticCost;

    fn name(&self) -> &'static str {
        "sorting"
    }

    fn cost(&self) -> Self::Cost {
        self.robust_cost(Self::DEFAULT_MU1, Self::DEFAULT_MU2, PenaltyKind::Squared)
    }

    fn initial_iterate<F: Fpu>(&self, cost: &Self::Cost, _fpu: &mut F) -> Vec<f64> {
        cost.initial_iterate()
    }

    fn decode(&self, cost: &Self::Cost, x: &[f64]) -> Vec<f64> {
        SortProblem::decode(self, cost, x)
    }

    fn reference(&self) -> Vec<f64> {
        self.sorted_reference()
    }

    /// Success is the paper's strict criterion
    /// ([`is_success`](SortProblem::is_success)); the metric is the
    /// fraction of misplaced positions (0 on success, `∞` on malformed
    /// output).
    fn verify(&self, solution: &Vec<f64>) -> Verdict {
        let reference = self.sorted_reference();
        if solution.len() != reference.len() || solution.iter().any(|v| !v.is_finite()) {
            return Verdict::breakdown();
        }
        let misplaced = solution
            .iter()
            .zip(&reference)
            .filter(|(a, b)| a != b)
            .count();
        Verdict {
            success: misplaced == 0,
            metric: misplaced as f64 / reference.len() as f64,
        }
    }

    /// Baseline variants: `quicksort` (default), `mergesort`, `insertion`.
    fn baseline<F: Fpu>(&self, spec: &SolverSpec, fpu: &mut F) -> Option<Vec<f64>> {
        match spec.variant.as_deref() {
            None | Some("quicksort") => Some(quicksort_baseline(fpu, &self.u)),
            Some("mergesort") => Some(mergesort_baseline(fpu, &self.u)),
            Some("insertion") => Some(insertion_baseline(fpu, &self.u)),
            Some(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use robustify_core::StepSchedule;
    use stochastic_fpu::{BitFaultModel, FaultRate, NoisyFpu, ReliableFpu};

    #[test]
    fn baselines_sort_reliably() {
        let data = [5.0, -1.0, 3.5, 0.0, 2.0, 2.0, -7.0];
        let expected = {
            let mut d = data.to_vec();
            d.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            d
        };
        let mut fpu = ReliableFpu::new();
        assert_eq!(quicksort_baseline(&mut fpu, &data), expected);
        assert_eq!(mergesort_baseline(&mut fpu, &data), expected);
        assert_eq!(insertion_baseline(&mut fpu, &data), expected);
    }

    #[test]
    fn baselines_handle_degenerate_inputs() {
        let mut fpu = ReliableFpu::new();
        assert_eq!(quicksort_baseline(&mut fpu, &[]), Vec::<f64>::new());
        assert_eq!(quicksort_baseline(&mut fpu, &[1.0]), vec![1.0]);
        assert_eq!(mergesort_baseline(&mut fpu, &[2.0, 2.0]), vec![2.0, 2.0]);
    }

    #[test]
    fn baselines_terminate_under_heavy_faults() {
        let mut rng = StdRng::seed_from_u64(1);
        for seed in 0..30 {
            let p = SortProblem::random(&mut rng, 16);
            let mut fpu = NoisyFpu::new(FaultRate::per_flop(0.5), BitFaultModel::emulated(), seed);
            let out = quicksort_baseline(&mut fpu, p.input());
            assert_eq!(out.len(), 16);
            let out = mergesort_baseline(&mut fpu, p.input());
            assert_eq!(out.len(), 16);
        }
    }

    #[test]
    fn baseline_output_is_a_permutation_even_when_wrong() {
        // Comparisons fault but data moves are exact, so the multiset of
        // values must be preserved.
        let p = SortProblem::random(&mut StdRng::seed_from_u64(2), 8);
        let mut fpu = NoisyFpu::new(FaultRate::per_flop(0.3), BitFaultModel::emulated(), 9);
        let mut out = quicksort_baseline(&mut fpu, p.input());
        let mut input = p.input().to_vec();
        out.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        input.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        assert_eq!(out, input);
    }

    #[test]
    fn robust_sort_succeeds_reliably() {
        let p = SortProblem::new(vec![4.0, -2.0, 9.0, 0.5, 1.0]).expect("finite entries");
        let sgd = Sgd::new(3000, StepSchedule::Sqrt { gamma0: 0.05 });
        let (out, report) = p.solve_sgd(&sgd, &mut ReliableFpu::new());
        assert!(p.is_success(&out), "output {out:?}");
        assert!(report.flops > 0);
    }

    #[test]
    fn robust_sort_survives_moderate_faults() {
        let mut successes = 0;
        for seed in 0..10 {
            let p = SortProblem::new(vec![4.0, -2.0, 9.0, 0.5, 1.0]).expect("finite entries");
            let sgd = Sgd::new(4000, StepSchedule::Sqrt { gamma0: 0.05 })
                .with_aggressive_stepping(Default::default());
            let mut fpu = NoisyFpu::new(FaultRate::per_flop(0.02), BitFaultModel::emulated(), seed);
            let (out, _) = p.solve_sgd(&sgd, &mut fpu);
            if p.is_success(&out) {
                successes += 1;
            }
        }
        assert!(
            successes >= 7,
            "only {successes}/10 robust sorts succeeded at 2%"
        );
    }

    #[test]
    fn decode_fills_unassigned_slots() {
        let p = SortProblem::new(vec![10.0, 20.0, 30.0]).expect("finite entries");
        let cost = p.robust_cost(1.0, 1.0, PenaltyKind::Squared);
        // Only position 1 <- source 2 is confidently assigned.
        let mut x = vec![0.0; 9];
        x[3 + 2] = 0.9;
        let out = p.decode(&cost, &x);
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|v| v.is_finite()));
        assert_eq!(out[1], 30.0);
        // The remaining values appear exactly once each.
        let mut rest: Vec<f64> = vec![out[0], out[2]];
        rest.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        assert_eq!(rest, vec![10.0, 20.0]);
    }

    #[test]
    fn success_criterion_is_strict() {
        let p = SortProblem::new(vec![2.0, 1.0]).expect("finite entries");
        assert!(p.is_success(&[1.0, 2.0]));
        assert!(!p.is_success(&[2.0, 1.0]));
        assert!(!p.is_success(&[1.0, f64::NAN]));
        assert!(!p.is_success(&[1.0]));
    }

    #[test]
    fn constructors_validate() {
        assert!(SortProblem::new(vec![]).is_err());
        assert!(SortProblem::new(vec![1.0, f64::INFINITY]).is_err());
    }

    #[test]
    fn robust_problem_trait_round_trip() {
        let p = SortProblem::new(vec![4.0, -2.0, 9.0]).expect("finite entries");
        let spec = SolverSpec::sgd(3000, StepSchedule::Sqrt { gamma0: 0.05 });
        let out = p
            .solve(&spec, &mut ReliableFpu::new())
            .expect("sgd is supported");
        let verdict = p.verify(&out.solution.expect("sgd decodes"));
        assert!(verdict.success);
        assert_eq!(verdict.metric, 0.0);
        assert_eq!(p.reference(), vec![-2.0, 4.0, 9.0]);

        let baseline = p
            .baseline(
                &SolverSpec::baseline_variant("mergesort"),
                &mut ReliableFpu::new(),
            )
            .expect("mergesort is a known variant");
        assert_eq!(baseline, p.reference());
        assert!(p
            .baseline(
                &SolverSpec::baseline_variant("bogus"),
                &mut ReliableFpu::new()
            )
            .is_none());
    }

    #[test]
    fn verify_grades_partial_orderings() {
        let p = SortProblem::new(vec![2.0, 1.0, 3.0]).expect("finite entries");
        let wrong = p.verify(&vec![2.0, 1.0, 3.0]);
        assert!(!wrong.success);
        assert!((wrong.metric - 2.0 / 3.0).abs() < 1e-12);
        assert!(!p.verify(&vec![1.0, f64::NAN, 3.0]).success);
    }
}
