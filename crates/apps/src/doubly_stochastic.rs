//! The doubly stochastic relaxation shared by sorting (§4.3) and bipartite
//! matching (§4.4).
//!
//! Both problems maximize a linear payoff `Σᵢⱼ Pᵢⱼ Xᵢⱼ` over permutation-like
//! indicator matrices. "Since permutation matrices are the extreme points of
//! the set of doubly stochastic matrices, which is polyhedral, such an X can
//! be found by solving the linear program" (4.3):
//!
//! ```text
//! max Σ Pᵢⱼ Xᵢⱼ   s.t.   Xᵢⱼ ≥ 0,   Σᵢ Xᵢⱼ ≤ 1,   Σⱼ Xᵢⱼ ≤ 1
//! ```
//!
//! [`DoublyStochasticCost`] is the corresponding unconstrained exact-penalty
//! cost (paper eq. 4.4) with the closed-form subgradient of eq. 4.5,
//! evaluated in `O(r·c)` — much cheaper than the generic dense-LP gradient,
//! which matters at the paper's 10 000-iteration budgets. Equivalence with
//! the generic [`LinearProgram`] path is covered by tests.

use rand::{Rng, RngExt};
use robustify_core::{
    CoreError, CostFunction, LinearProgram, PenaltyKind, RobustProblem, SolverSpec, Verdict,
};
use robustify_graph::{hungarian, BipartiteGraph};
use robustify_linalg::Matrix;
use stochastic_fpu::{Fpu, ReliableFpu};

/// The penalized payoff-maximization cost over relaxed permutation matrices
/// (paper eqs. 4.4–4.5).
///
/// Variables are a flattened row-major `r × c` matrix `X`. The cost is
///
/// ```text
/// f(X) = −Σ Pᵢⱼ Xᵢⱼ + μ₁ Σ pen([−Xᵢⱼ]₊) + μ₂ Σᵢ pen([Σⱼ Xᵢⱼ − 1]₊)
///        + μ₂ Σⱼ pen([Σᵢ Xᵢⱼ − 1]₊)
/// ```
///
/// with `pen(v) = v²` ([`PenaltyKind::Squared`], the paper's choice) or
/// `pen(v) = v` ([`PenaltyKind::Abs`]).
///
/// # Examples
///
/// ```
/// use robustify_apps::doubly_stochastic::DoublyStochasticCost;
/// use robustify_core::{CostFunction, PenaltyKind};
/// use robustify_linalg::Matrix;
/// use stochastic_fpu::ReliableFpu;
///
/// # fn main() -> Result<(), robustify_core::CoreError> {
/// let p = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]])?;
/// let cost = DoublyStochasticCost::new(p, 10.0, 10.0, PenaltyKind::Squared)?;
/// // The identity permutation is feasible: cost = -payoff = -2.
/// assert_eq!(cost.cost(&[1.0, 0.0, 0.0, 1.0], &mut ReliableFpu::new()), -2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DoublyStochasticCost {
    payoff: Matrix,
    mu1: f64,
    mu2: f64,
    kind: PenaltyKind,
}

impl DoublyStochasticCost {
    /// Creates the cost for payoff matrix `P` with non-negativity weight
    /// `mu1` and row/column-sum weight `mu2`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if either penalty weight is not
    /// positive and finite.
    pub fn new(payoff: Matrix, mu1: f64, mu2: f64, kind: PenaltyKind) -> Result<Self, CoreError> {
        for (name, mu) in [("mu1", mu1), ("mu2", mu2)] {
            if !mu.is_finite() || mu <= 0.0 {
                return Err(CoreError::invalid_config(format!(
                    "{name} must be positive and finite, got {mu}"
                )));
            }
        }
        Ok(DoublyStochasticCost {
            payoff,
            mu1,
            mu2,
            kind,
        })
    }

    /// The payoff matrix `P`.
    pub fn payoff(&self) -> &Matrix {
        &self.payoff
    }

    /// Number of rows of `X`.
    pub fn rows(&self) -> usize {
        self.payoff.rows()
    }

    /// Number of columns of `X`.
    pub fn cols(&self) -> usize {
        self.payoff.cols()
    }

    /// The non-negativity penalty weight `μ₁`.
    pub fn mu1(&self) -> f64 {
        self.mu1
    }

    /// The row/column-sum penalty weight `μ₂`.
    pub fn mu2(&self) -> f64 {
        self.mu2
    }

    /// The uniform doubly stochastic starting iterate `Xᵢⱼ = 1/max(r, c)`.
    pub fn initial_iterate(&self) -> Vec<f64> {
        // detlint::allow(fpu-routing, reason = "iterate seeding is reliable problem setup")
        let v = 1.0 / self.rows().max(self.cols()) as f64;
        vec![v; self.rows() * self.cols()]
    }

    /// The equivalent generic linear program (paper eq. 4.3), used for
    /// preconditioning and for validating this specialized cost.
    pub fn to_lp(&self) -> LinearProgram {
        let (r, c) = (self.rows(), self.cols());
        let n = r * c;
        let payoff = &self.payoff;
        let neg_p: Vec<f64> = (0..n).map(|k| -payoff[(k / c, k % c)]).collect();
        // Row-sum rows then column-sum rows, all ≤ 1.
        let a = Matrix::from_fn(r + c, n, |cons, k| {
            let (i, j) = (k / c, k % c);
            if cons < r {
                if i == cons {
                    1.0
                } else {
                    0.0
                }
            } else if j == cons - r {
                1.0
            } else {
                0.0
            }
        });
        let b = vec![1.0; r + c];
        LinearProgram::minimize(neg_p)
            .with_upper_bounds(a, b)
            .expect("constructed shapes are consistent")
            .with_nonneg()
    }

    /// Greedy rounding of a relaxed `X` to an assignment: repeatedly take
    /// the largest remaining entry above `threshold`, excluding its row and
    /// column. A control-plane decode step (native arithmetic).
    pub fn decode_assignment(&self, x: &[f64], threshold: f64) -> Vec<(usize, usize)> {
        let (r, c) = (self.rows(), self.cols());
        assert_eq!(x.len(), r * c, "X has the wrong dimension");
        let mut used_row = vec![false; r];
        let mut used_col = vec![false; c];
        let mut pairs = Vec::new();
        loop {
            let mut best: Option<(usize, usize, f64)> = None;
            for i in 0..r {
                if used_row[i] {
                    continue;
                }
                for j in 0..c {
                    if used_col[j] {
                        continue;
                    }
                    let v = x[i * c + j];
                    if !v.is_finite() || v < threshold {
                        continue;
                    }
                    if best.map(|(_, _, bv)| v > bv).unwrap_or(true) {
                        best = Some((i, j, v));
                    }
                }
            }
            match best {
                Some((i, j, _)) => {
                    used_row[i] = true;
                    used_col[j] = true;
                    pairs.push((i, j));
                }
                None => break,
            }
        }
        pairs.sort_unstable();
        pairs
    }

    fn pen<F: Fpu>(&self, v: f64, fpu: &mut F) -> f64 {
        match self.kind {
            PenaltyKind::Abs => v,
            PenaltyKind::Squared => fpu.mul(v, v),
        }
    }

    fn slope(&self, v: f64) -> f64 {
        match self.kind {
            PenaltyKind::Abs => 1.0,
            // detlint::allow(fpu-routing, reason = "penalty subgradient scale runs on the reliable control plane")
            PenaltyKind::Squared => 2.0 * v,
        }
    }

    /// Row and column sums of `X` through the FPU.
    ///
    /// The two accumulations interleave per entry (`add` into the row sum,
    /// then `add` into the column sum), so this drives the generic
    /// [`Fpu::with_exact_windows`] machinery directly rather than a slice
    /// kernel; the per-op expansion is preserved bit for bit.
    fn sums<F: Fpu>(&self, x: &[f64], fpu: &mut F) -> (Vec<f64>, Vec<f64>) {
        let (r, c) = (self.rows(), self.cols());
        let mut row = vec![0.0; r];
        let mut col = vec![0.0; c];
        // (i, j) tracks the flattened index incrementally — no div/mod in
        // the hot loop.
        let (mut i, mut j) = (0, 0);
        fpu.with_exact_windows(r * c, 2, |fpu, range, exact| {
            for k in range {
                let v = x[k];
                if exact {
                    row[i] += v;
                    col[j] += v;
                } else {
                    row[i] = fpu.add(row[i], v);
                    col[j] = fpu.add(col[j], v);
                }
                j += 1;
                if j == c {
                    j = 0;
                    i += 1;
                }
            }
        });
        (row, col)
    }

    /// Worst-case FLOPs one entry of `X` can cost in
    /// [`cost`](CostFunction::cost): the payoff ops plus a fully active
    /// non-negativity hinge.
    fn worst_flops_per_entry(&self) -> u64 {
        match self.kind {
            PenaltyKind::Abs => 4,
            PenaltyKind::Squared => 5,
        }
    }
}

impl CostFunction for DoublyStochasticCost {
    fn dim(&self) -> usize {
        self.rows() * self.cols()
    }

    fn cost<F: Fpu>(&self, x: &[f64], fpu: &mut F) -> f64 {
        assert_eq!(x.len(), self.dim(), "X has the wrong dimension");
        // The per-entry FLOP count is data-dependent (the hinge), so this
        // drives the Fpu window query directly: entries whose worst case
        // fits the guaranteed-exact window run natively (committing the
        // FLOPs actually spent), everything else takes the per-op path.
        let p = self.payoff.as_slice();
        let n = self.dim();
        let per = self.worst_flops_per_entry();
        let mut total = 0.0;
        let mut k = 0;
        while k < n {
            let window = fpu.run_exact((n - k) as u64 * per);
            if window < per {
                let v = x[k];
                // −P·X term.
                let prod = fpu.mul(p[k], v);
                total = fpu.sub(total, prod);
                // μ₁ pen([−X]₊).
                let neg = (-v).max(0.0);
                if neg > 0.0 {
                    let pen = self.pen(neg, fpu);
                    let w = fpu.mul(self.mu1, pen);
                    total = fpu.add(total, w);
                }
                k += 1;
            } else {
                // Fill the window greedily: keep processing entries while
                // the *worst case* for the next entry still fits, so a
                // mostly-feasible iterate (hinges inactive, 2 FLOPs per
                // entry) packs ~2.5× more entries per window than a
                // worst-case pre-split would.
                let mut used = 0u64;
                while k < n && used + per <= window {
                    let v = x[k];
                    total -= p[k] * v;
                    used += 2;
                    let neg = (-v).max(0.0);
                    if neg > 0.0 {
                        let pen = match self.kind {
                            PenaltyKind::Abs => neg,
                            PenaltyKind::Squared => {
                                used += 1;
                                neg * neg
                            }
                        };
                        total += self.mu1 * pen;
                        used += 2;
                    }
                    k += 1;
                }
                fpu.commit_exact(used);
            }
        }
        let (row, col) = self.sums(x, fpu);
        for s in row.into_iter().chain(col) {
            let over = fpu.sub(s, 1.0).max(0.0);
            if over > 0.0 {
                let pen = self.pen(over, fpu);
                let w = fpu.mul(self.mu2, pen);
                total = fpu.add(total, w);
            }
        }
        total
    }

    fn gradient<F: Fpu>(&self, x: &[f64], fpu: &mut F, grad: &mut [f64]) {
        assert_eq!(x.len(), self.dim(), "X has the wrong dimension");
        let (r, c) = (self.rows(), self.cols());
        let (row, col) = self.sums(x, fpu);
        // Per-row and per-column hinge coefficients (paper eq. 4.5).
        let row_coef: Vec<f64> = row
            .iter()
            .map(|&s| {
                let over = fpu.sub(s, 1.0).max(0.0);
                if over > 0.0 {
                    fpu.mul(self.mu2, self.slope(over))
                } else {
                    0.0
                }
            })
            .collect();
        let col_coef: Vec<f64> = col
            .iter()
            .map(|&s| {
                let over = fpu.sub(s, 1.0).max(0.0);
                if over > 0.0 {
                    fpu.mul(self.mu2, self.slope(over))
                } else {
                    0.0
                }
            })
            .collect();
        // Same window-driven fast path as `cost`: the hinge makes the
        // per-entry FLOP count data-dependent, so entries run natively
        // only when their worst case fits the guaranteed-exact window.
        let p = self.payoff.as_slice();
        let n = r * c;
        // Hinge worst case: 2 FLOPs, plus the 2 coefficient additions.
        let per = 4u64;
        // (i, j) tracks the flattened index k incrementally — no div/mod
        // in the hot loop.
        let (mut k, mut i, mut j) = (0, 0, 0);
        while k < n {
            let window = fpu.run_exact((n - k) as u64 * per);
            if window < per {
                let v = x[k];
                // g = −P_ij − μ₁·slope([−X]₊) + rowcoef_i + colcoef_j.
                let mut g = -p[k];
                let neg = (-v).max(0.0);
                if neg > 0.0 {
                    let w = fpu.mul(self.mu1, self.slope(neg));
                    g = fpu.sub(g, w);
                }
                g = fpu.add(g, row_coef[i]);
                g = fpu.add(g, col_coef[j]);
                grad[k] = g;
                k += 1;
                j += 1;
                if j == c {
                    j = 0;
                    i += 1;
                }
            } else {
                let mut used = 0u64;
                while k < n && used + per <= window {
                    let v = x[k];
                    let mut g = -p[k];
                    let neg = (-v).max(0.0);
                    if neg > 0.0 {
                        g -= self.mu1 * self.slope(neg);
                        used += 2;
                    }
                    g += row_coef[i];
                    g += col_coef[j];
                    used += 2;
                    grad[k] = g;
                    k += 1;
                    j += 1;
                    if j == c {
                        j = 0;
                        i += 1;
                    }
                }
                fpu.commit_exact(used);
            }
        }
    }

    fn anneal(&mut self, factor: f64) {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "anneal factor must be positive"
        );
        // Saturated as in `PenaltyCost::anneal`.
        self.mu1 = (self.mu1 * factor).min(1e9);
        self.mu2 = (self.mu2 * factor).min(1e9);
    }
}

/// The assignment problem in its own right: maximize the total payoff of a
/// one-to-one assignment for a dense positive payoff matrix — the LP (4.3)
/// without the sorting/matching framing, as a [`RobustProblem`].
///
/// # Examples
///
/// ```
/// use robustify_apps::doubly_stochastic::AssignmentProblem;
/// use robustify_core::{RobustProblem, SolverSpec, StepSchedule};
/// use robustify_linalg::Matrix;
/// use stochastic_fpu::ReliableFpu;
///
/// # fn main() -> Result<(), robustify_core::CoreError> {
/// let payoff = Matrix::from_rows(&[&[0.9, 0.1], &[0.2, 0.8]])?;
/// let problem = AssignmentProblem::new(payoff)?;
/// let spec = SolverSpec::sgd(3000, StepSchedule::Sqrt { gamma0: 0.05 });
/// let out = problem.solve(&spec, &mut ReliableFpu::new())?;
/// assert!(problem.verify(&out.solution.expect("sgd decodes")).success);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AssignmentProblem {
    payoff: Matrix,
    graph: BipartiteGraph,
    optimal_weight: f64,
}

impl AssignmentProblem {
    /// Default non-negativity penalty weight `μ₁`.
    pub const DEFAULT_MU1: f64 = 8.0;
    /// Default row/column-sum penalty weight `μ₂`.
    pub const DEFAULT_MU2: f64 = 8.0;

    /// Creates the problem for a payoff matrix with positive finite
    /// entries, computing the optimal assignment weight offline with a
    /// reliable Hungarian pass.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the matrix is empty or any
    /// entry is non-positive or non-finite (the `≤ 1` row/column relaxation
    /// only recovers assignments whose every edge carries positive payoff).
    pub fn new(payoff: Matrix) -> Result<Self, CoreError> {
        let (r, c) = (payoff.rows(), payoff.cols());
        if r == 0 || c == 0 {
            return Err(CoreError::invalid_config("payoff matrix is empty"));
        }
        for i in 0..r {
            for j in 0..c {
                let v = payoff[(i, j)];
                if !v.is_finite() || v <= 0.0 {
                    return Err(CoreError::invalid_config(format!(
                        "payoff entries must be positive and finite, got {v} at ({i}, {j})"
                    )));
                }
            }
        }
        let mut edges = Vec::with_capacity(r * c);
        for i in 0..r {
            for j in 0..c {
                edges.push((i, j, payoff[(i, j)]));
            }
        }
        let graph = BipartiteGraph::new(r, c, edges).expect("dense edges are in range");
        let optimal_weight = hungarian(&mut ReliableFpu::new(), &graph)
            .expect("reliable hungarian cannot break down")
            .weight();
        Ok(AssignmentProblem {
            payoff,
            graph,
            optimal_weight,
        })
    }

    /// Generates a random problem with an `n × n` payoff drawn uniformly
    /// from `[0.1, 1.1)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn random<R: Rng>(rng: &mut R, n: usize) -> Self {
        assert!(n > 0, "need at least one agent");
        let payoff = Matrix::from_fn(n, n, |_, _| rng.random_range(0.1..1.1));
        Self::new(payoff).expect("generated entries are positive and finite")
    }

    /// The payoff matrix.
    pub fn payoff(&self) -> &Matrix {
        &self.payoff
    }

    /// The optimal assignment weight (ground truth).
    pub fn optimal_weight(&self) -> f64 {
        self.optimal_weight
    }

    /// The total payoff of an assignment (native arithmetic).
    pub fn assignment_weight(&self, pairs: &[(usize, usize)]) -> f64 {
        // detlint::allow(float-reassociation, reason = "payoff measurement is documented native verification arithmetic")
        pairs.iter().map(|&(i, j)| self.payoff[(i, j)]).sum()
    }
}

impl RobustProblem for AssignmentProblem {
    type Solution = Vec<(usize, usize)>;
    type Cost = DoublyStochasticCost;

    fn name(&self) -> &'static str {
        "doubly_stochastic"
    }

    fn cost(&self) -> Self::Cost {
        DoublyStochasticCost::new(
            self.payoff.clone(),
            Self::DEFAULT_MU1,
            Self::DEFAULT_MU2,
            PenaltyKind::Squared,
        )
        .expect("default penalty weights are valid")
    }

    fn initial_iterate<F: Fpu>(&self, cost: &Self::Cost, _fpu: &mut F) -> Vec<f64> {
        cost.initial_iterate()
    }

    fn decode(&self, cost: &Self::Cost, x: &[f64]) -> Vec<(usize, usize)> {
        cost.decode_assignment(x, 0.25)
    }

    fn reference(&self) -> Vec<(usize, usize)> {
        hungarian(&mut ReliableFpu::new(), &self.graph)
            .expect("reliable hungarian cannot break down")
            .pairs()
            .to_vec()
    }

    /// Success means attaining the optimal weight (up to round-off); the
    /// metric is the relative payoff gap.
    fn verify(&self, solution: &Vec<(usize, usize)>) -> Verdict {
        let weight = self.assignment_weight(solution);
        let gap = (self.optimal_weight - weight).max(0.0) / self.optimal_weight.max(1e-12);
        Verdict {
            // detlint::allow(fpu-routing, reason = "success-threshold check is reliable verification arithmetic")
            success: (weight - self.optimal_weight).abs() <= 1e-9 * (1.0 + self.optimal_weight),
            metric: gap,
        }
    }

    /// The fault-exposed Hungarian baseline.
    fn baseline<F: Fpu>(&self, _spec: &SolverSpec, fpu: &mut F) -> Option<Vec<(usize, usize)>> {
        hungarian(fpu, &self.graph).ok().map(|m| m.pairs().to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stochastic_fpu::ReliableFpu;

    fn payoff_2x2() -> Matrix {
        Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 3.0]]).expect("valid rows")
    }

    fn cost_2x2(kind: PenaltyKind) -> DoublyStochasticCost {
        DoublyStochasticCost::new(payoff_2x2(), 8.0, 8.0, kind).expect("valid weights")
    }

    #[test]
    fn feasible_points_cost_negative_payoff() {
        let cost = cost_2x2(PenaltyKind::Squared);
        let mut fpu = ReliableFpu::new();
        assert_eq!(cost.cost(&[1.0, 0.0, 0.0, 1.0], &mut fpu), -6.0);
        assert_eq!(cost.cost(&[0.0, 1.0, 1.0, 0.0], &mut fpu), -2.0);
        // Fractional doubly stochastic interior point: payoff -4.
        assert_eq!(cost.cost(&[0.5, 0.5, 0.5, 0.5], &mut fpu), -4.0);
    }

    #[test]
    fn violations_are_penalized() {
        let cost = cost_2x2(PenaltyKind::Squared);
        let mut fpu = ReliableFpu::new();
        // X with a negative entry: payoff part -(3·(-1)) = +3, penalty 8·1².
        let v = cost.cost(&[-1.0, 0.0, 0.0, 0.0], &mut fpu);
        assert_eq!(v, 3.0 + 8.0);
        // Row 0 sums to 2: penalty 8·1²; two column sums 1 are fine.
        let v = cost.cost(&[1.0, 1.0, 0.0, 0.0], &mut fpu);
        assert_eq!(v, -4.0 + 8.0);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        for kind in [PenaltyKind::Squared, PenaltyKind::Abs] {
            let cost = cost_2x2(kind);
            // A generic point with active and inactive hinges, away from
            // kinks.
            let x = [0.7, -0.2, 0.9, 0.6];
            let mut fpu = ReliableFpu::new();
            let mut grad = vec![0.0; 4];
            cost.gradient(&x, &mut fpu, &mut grad);
            let h = 1e-6;
            for i in 0..4 {
                let mut xp = x.to_vec();
                let mut xm = x.to_vec();
                xp[i] += h;
                xm[i] -= h;
                let fd = (cost.cost(&xp, &mut fpu) - cost.cost(&xm, &mut fpu)) / (2.0 * h);
                assert!(
                    (grad[i] - fd).abs() < 1e-4 * (1.0 + fd.abs()),
                    "{kind:?} lane {i}: {} vs {fd}",
                    grad[i]
                );
            }
        }
    }

    #[test]
    fn specialized_cost_matches_generic_lp() {
        let cost = cost_2x2(PenaltyKind::Squared);
        let lp = cost.to_lp();
        // The generic penalized LP uses a single μ; choose matching weights.
        let generic = lp.penalized(8.0, PenaltyKind::Squared).expect("valid mu");
        let mut fpu = ReliableFpu::new();
        for x in [
            vec![1.0, 0.0, 0.0, 1.0],
            vec![0.5, 0.5, 0.5, 0.5],
            vec![-0.3, 1.2, 0.8, 0.1],
            vec![2.0, 0.0, -1.0, 0.4],
        ] {
            let a = cost.cost(&x, &mut fpu);
            let b = generic.cost(&x, &mut fpu);
            assert!(
                (a - b).abs() < 1e-9,
                "specialized {a} vs generic {b} at {x:?}"
            );
            let mut ga = vec![0.0; 4];
            let mut gb = vec![0.0; 4];
            cost.gradient(&x, &mut fpu, &mut ga);
            generic.gradient(&x, &mut fpu, &mut gb);
            for (u, v) in ga.iter().zip(&gb) {
                assert!((u - v).abs() < 1e-9, "gradients differ at {x:?}");
            }
        }
    }

    #[test]
    fn decode_rounds_to_best_assignment() {
        let cost = cost_2x2(PenaltyKind::Squared);
        let pairs = cost.decode_assignment(&[0.9, 0.1, 0.2, 0.8], 0.5);
        assert_eq!(pairs, vec![(0, 0), (1, 1)]);
        // Below-threshold entries are dropped.
        let pairs = cost.decode_assignment(&[0.9, 0.1, 0.2, 0.3], 0.5);
        assert_eq!(pairs, vec![(0, 0)]);
        // NaN entries are ignored rather than propagated.
        let pairs = cost.decode_assignment(&[f64::NAN, 0.8, 0.7, f64::NAN], 0.5);
        assert_eq!(pairs, vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn initial_iterate_is_feasible() {
        let cost = cost_2x2(PenaltyKind::Squared);
        let x0 = cost.initial_iterate();
        assert_eq!(x0, vec![0.5; 4]);
        let lp = cost.to_lp();
        assert_eq!(lp.violation(&x0), 0.0);
    }

    #[test]
    fn anneal_scales_both_weights() {
        let mut cost = cost_2x2(PenaltyKind::Squared);
        cost.anneal(2.5);
        assert_eq!(cost.mu1(), 20.0);
        assert_eq!(cost.mu2(), 20.0);
    }

    #[test]
    fn invalid_weights_rejected() {
        assert!(DoublyStochasticCost::new(payoff_2x2(), 0.0, 1.0, PenaltyKind::Abs).is_err());
        assert!(DoublyStochasticCost::new(payoff_2x2(), 1.0, -1.0, PenaltyKind::Abs).is_err());
    }

    #[test]
    fn rectangular_payoffs_are_supported() {
        let p = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).expect("valid rows");
        let cost =
            DoublyStochasticCost::new(p, 5.0, 5.0, PenaltyKind::Squared).expect("valid weights");
        assert_eq!(cost.dim(), 6);
        assert_eq!(cost.initial_iterate(), vec![1.0 / 3.0; 6]);
        let lp = cost.to_lp();
        assert_eq!(lp.dim(), 6);
        let (a, _) = lp.upper_bounds().expect("has row/col constraints");
        assert_eq!(a.rows(), 5); // 2 row sums + 3 column sums
    }
}
