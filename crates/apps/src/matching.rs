//! Bipartite graph matching (§4.4): "let `W` be the `|U| × |V|` matrix of
//! edge weights and let `X` be a `|U| × |V|` indicator matrix over edges
//! ... it suffices to search over doubly stochastic matrices, as in the
//! previous example." The baseline is the Hungarian algorithm (the paper
//! used OpenCV's matcher) run through the faulty FPU.

use crate::doubly_stochastic::DoublyStochasticCost;
use robustify_core::{
    precondition_lp, CoreError, PenaltyKind, RobustOutcome, RobustProblem, Sgd, SolveMethod,
    SolveReport, SolverSpec, Verdict,
};
use robustify_graph::{brute_force_matching, hungarian, BipartiteGraph, GraphError, Matching};
use robustify_linalg::Matrix;
use stochastic_fpu::Fpu;

/// A maximum-weight bipartite matching problem with robust (LP + SGD) and
/// baseline (Hungarian) solvers.
///
/// # Examples
///
/// ```
/// use robustify_apps::matching::MatchingProblem;
/// use robustify_core::{Sgd, StepSchedule};
/// use robustify_graph::BipartiteGraph;
/// use stochastic_fpu::ReliableFpu;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = BipartiteGraph::new(2, 2, vec![(0, 0, 3.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 3.0)])?;
/// let p = MatchingProblem::new(g);
/// let sgd = Sgd::new(3000, StepSchedule::Sqrt { gamma0: 0.05 });
/// let (m, _report) = p.solve_sgd(&sgd, &mut ReliableFpu::new());
/// assert!(p.is_success(&m));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MatchingProblem {
    graph: BipartiteGraph,
    weights: Matrix,
    optimal_weight: f64,
}

impl MatchingProblem {
    /// Default non-negativity penalty weight `μ₁`.
    pub const DEFAULT_MU1: f64 = 8.0;
    /// Default row/column-sum penalty weight `μ₂`.
    pub const DEFAULT_MU2: f64 = 8.0;

    /// Creates the problem for `graph`, computing the ground-truth optimal
    /// weight offline (brute force for small graphs, reliable Hungarian
    /// otherwise).
    pub fn new(graph: BipartiteGraph) -> Self {
        let w = graph.weight_matrix(0.0);
        let weights = Matrix::from_fn(graph.left_count(), graph.right_count(), |i, j| w[i][j]);
        let optimal_weight = if graph.left_count().min(graph.right_count()) <= 8 {
            brute_force_matching(&graph).weight()
        } else {
            hungarian(&mut stochastic_fpu::ReliableFpu::new(), &graph)
                .expect("reliable hungarian cannot break down")
                .weight()
        };
        MatchingProblem {
            graph,
            weights,
            optimal_weight,
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &BipartiteGraph {
        &self.graph
    }

    /// The dense weight matrix (zero for absent edges).
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// The ground-truth maximum matching weight.
    pub fn optimal_weight(&self) -> f64 {
        self.optimal_weight
    }

    /// The penalized cost (eq. 4.4 with payoff `W`), weights scaled by
    /// `1/max W` so step sizes transfer across workloads.
    pub fn robust_cost(&self, mu1: f64, mu2: f64, kind: PenaltyKind) -> DoublyStochasticCost {
        let max_w = self
            .graph
            .edges()
            .iter()
            .map(|&(_, _, w)| w.abs())
            .fold(1e-12f64, f64::max);
        let scaled = Matrix::from_fn(self.weights.rows(), self.weights.cols(), |i, j| {
            self.weights[(i, j)] / max_w
        });
        DoublyStochasticCost::new(scaled, mu1, mu2, kind).expect("default weights are valid")
    }

    /// Solves the robust form with the given SGD configuration and default
    /// penalty weights, decoding the relaxed `X` to a matching over real
    /// edges.
    pub fn solve_sgd<F: Fpu>(&self, sgd: &Sgd, fpu: &mut F) -> (Matching, SolveReport) {
        let mut cost = self.robust_cost(Self::DEFAULT_MU1, Self::DEFAULT_MU2, PenaltyKind::Squared);
        let x0 = cost.initial_iterate();
        let report = sgd.run(&mut cost, &x0, fpu);
        let matching = self.decode(&cost, &report.x);
        (matching, report)
    }

    /// Solves via the *generic* LP path with QR preconditioning (§6.2.1):
    /// precondition the stacked constraint matrix, run SGD on the
    /// transformed program, recover `x = R⁻¹y`, decode.
    ///
    /// # Errors
    ///
    /// Propagates preconditioning failures ([`CoreError`]).
    pub fn solve_preconditioned_sgd<F: Fpu>(
        &self,
        sgd: &Sgd,
        fpu: &mut F,
    ) -> Result<(Matching, SolveReport), CoreError> {
        let cost = self.robust_cost(Self::DEFAULT_MU1, Self::DEFAULT_MU2, PenaltyKind::Squared);
        let lp = cost.to_lp();
        let pre = precondition_lp(&lp)?;
        let mut pen = pre
            .lp()
            .penalized(Self::DEFAULT_MU2, PenaltyKind::Squared)?;
        // Start from y = R x0 (control-plane setup).
        let x0 = cost.initial_iterate();
        let y0 = pre
            .r()
            .matvec(&mut stochastic_fpu::ReliableFpu::new(), &x0)
            .expect("x0 has lp dim");
        let report = sgd.run(&mut pen, &y0, fpu);
        let x = pre.recover(&report.x)?;
        Ok((self.decode(&cost, &x), report))
    }

    /// Decodes a relaxed `X` into a matching over *real* edges — LP
    /// rounding as a control-plane step. The relaxation's support (entries
    /// at or above threshold `0.25` that correspond to edges of the graph)
    /// is a shortlist of candidate edges; the decode picks the
    /// maximum-weight matching *within that shortlist* by a reliable
    /// Hungarian pass over the true weights. An unconverged or
    /// fault-scrambled `X` yields a support that misses optimal edges (the
    /// uniform start sits below the threshold entirely), so decode quality
    /// still tracks solver progress. Negative-weight edges never improve a
    /// maximum-weight matching (and [`hungarian`] rejects them), so they
    /// are dropped from the shortlist.
    pub fn decode(&self, cost: &DoublyStochasticCost, x: &[f64]) -> Matching {
        let (r, c) = (cost.rows(), cost.cols());
        debug_assert_eq!(x.len(), r * c, "X has the wrong dimension");
        let mut shortlist = Vec::new();
        for u in 0..r {
            for v in 0..c {
                let relaxed = x[u * c + v];
                if relaxed.is_finite() && relaxed >= 0.25 {
                    if let Some(w) = self.graph.weight(u, v) {
                        if w >= 0.0 {
                            shortlist.push((u, v, w));
                        }
                    }
                }
            }
        }
        if shortlist.is_empty() {
            return Matching::new(Vec::new(), 0.0);
        }
        let subgraph =
            BipartiteGraph::new(r, c, shortlist).expect("shortlist endpoints are in range");
        hungarian(&mut stochastic_fpu::ReliableFpu::new(), &subgraph)
            .expect("reliable hungarian cannot break down")
    }

    /// The fault-exposed Hungarian baseline.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError::NumericalBreakdown`] (a failed baseline
    /// run).
    pub fn solve_baseline<F: Fpu>(&self, fpu: &mut F) -> Result<Matching, GraphError> {
        hungarian(fpu, &self.graph)
    }

    /// The paper's Figure 6.4 success criterion: "the percentage of outputs
    /// where all the edges are accurately chosen" — i.e. the decoded
    /// matching attains the optimal weight.
    pub fn is_success(&self, matching: &Matching) -> bool {
        // detlint::allow(fpu-routing, reason = "success-threshold check is reliable verification arithmetic")
        (matching.weight() - self.optimal_weight).abs() <= 1e-9 * (1.0 + self.optimal_weight)
    }
}

impl RobustProblem for MatchingProblem {
    type Solution = Matching;
    type Cost = DoublyStochasticCost;

    fn name(&self) -> &'static str {
        "matching"
    }

    fn cost(&self) -> Self::Cost {
        self.robust_cost(Self::DEFAULT_MU1, Self::DEFAULT_MU2, PenaltyKind::Squared)
    }

    fn initial_iterate<F: Fpu>(&self, cost: &Self::Cost, _fpu: &mut F) -> Vec<f64> {
        cost.initial_iterate()
    }

    fn decode(&self, cost: &Self::Cost, x: &[f64]) -> Matching {
        MatchingProblem::decode(self, cost, x)
    }

    fn reference(&self) -> Matching {
        hungarian(&mut stochastic_fpu::ReliableFpu::new(), &self.graph)
            .expect("reliable hungarian cannot break down")
    }

    /// Success is the paper's criterion
    /// ([`is_success`](MatchingProblem::is_success)); the metric is the
    /// relative weight gap to the optimal matching.
    fn verify(&self, solution: &Matching) -> Verdict {
        let gap =
            (self.optimal_weight - solution.weight()).max(0.0) / self.optimal_weight.max(1e-12);
        Verdict {
            success: self.is_success(solution),
            metric: gap,
        }
    }

    fn baseline<F: Fpu>(&self, _spec: &SolverSpec, fpu: &mut F) -> Option<Matching> {
        self.solve_baseline(fpu).ok()
    }

    /// Adds [`SolveMethod::PreconditionedSgd`] (§6.2.1) on top of the
    /// default SGD/baseline paths; a preconditioning breakdown counts as a
    /// failed trial, matching Figure 6.5's tally.
    fn solve<F: Fpu>(
        &self,
        spec: &SolverSpec,
        fpu: &mut F,
    ) -> Result<RobustOutcome<Matching>, CoreError> {
        match spec.method {
            SolveMethod::PreconditionedSgd => {
                match self.solve_preconditioned_sgd(&spec.build_sgd(), fpu) {
                    Ok((matching, report)) => Ok(RobustOutcome {
                        solution: Some(matching),
                        report: Some(report),
                    }),
                    Err(_) => Ok(RobustOutcome {
                        solution: None,
                        report: None,
                    }),
                }
            }
            _ => robustify_core::default_solve(self, spec, fpu),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use robustify_core::StepSchedule;
    use robustify_graph::generators::random_bipartite;
    use stochastic_fpu::{BitFaultModel, FaultRate, NoisyFpu, ReliableFpu};

    fn paper_workload(seed: u64) -> MatchingProblem {
        // The paper's graph: 11 nodes (5 + 6), 30 edges.
        let mut rng = StdRng::seed_from_u64(seed);
        MatchingProblem::new(random_bipartite(&mut rng, 5, 6, 30))
    }

    #[test]
    fn baseline_is_optimal_reliably() {
        let p = paper_workload(1);
        let m = p
            .solve_baseline(&mut ReliableFpu::new())
            .expect("reliable run");
        assert!(
            p.is_success(&m),
            "hungarian {} vs optimal {}",
            m.weight(),
            p.optimal_weight()
        );
    }

    #[test]
    fn robust_matching_succeeds_reliably() {
        let p = paper_workload(2);
        let sgd =
            Sgd::new(6000, StepSchedule::Sqrt { gamma0: 0.05 }).with_annealing(Default::default());
        let (m, _) = p.solve_sgd(&sgd, &mut ReliableFpu::new());
        assert!(
            p.is_success(&m),
            "robust weight {} vs optimal {}",
            m.weight(),
            p.optimal_weight()
        );
    }

    #[test]
    fn robust_matching_survives_moderate_faults() {
        let p = paper_workload(3);
        let mut successes = 0;
        for seed in 0..6 {
            let sgd = Sgd::new(6000, StepSchedule::Sqrt { gamma0: 0.05 })
                .with_annealing(Default::default())
                .with_aggressive_stepping(Default::default());
            let mut fpu = NoisyFpu::new(FaultRate::per_flop(0.02), BitFaultModel::emulated(), seed);
            let (m, _) = p.solve_sgd(&sgd, &mut fpu);
            if p.is_success(&m) {
                successes += 1;
            }
        }
        assert!(
            successes >= 3,
            "only {successes}/6 robust matchings succeeded at 2%"
        );
    }

    #[test]
    fn preconditioned_path_matches_reliably() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = MatchingProblem::new(random_bipartite(&mut rng, 3, 3, 7));
        let (m, _) = p
            .solve_preconditioned_sgd(
                &Sgd::new(6000, StepSchedule::Sqrt { gamma0: 0.05 }),
                &mut ReliableFpu::new(),
            )
            .expect("preconditionable");
        assert!(
            p.is_success(&m),
            "preconditioned weight {} vs optimal {}",
            m.weight(),
            p.optimal_weight()
        );
    }

    #[test]
    fn decode_ignores_phantom_edges() {
        let g = BipartiteGraph::new(2, 2, vec![(0, 0, 5.0)]).expect("valid graph");
        let p = MatchingProblem::new(g);
        let cost = p.robust_cost(1.0, 1.0, PenaltyKind::Squared);
        // X confidently selects (0,0) and the non-existent (1,1).
        let m = p.decode(&cost, &[0.9, 0.0, 0.0, 0.9]);
        assert_eq!(m.pairs(), &[(0, 0)]);
        assert_eq!(m.weight(), 5.0);
    }

    #[test]
    fn success_compares_weights_not_edge_sets() {
        // Two optimal matchings of equal weight both count as success.
        let g = BipartiteGraph::new(
            2,
            2,
            vec![(0, 0, 2.0), (0, 1, 2.0), (1, 0, 2.0), (1, 1, 2.0)],
        )
        .expect("valid graph");
        let p = MatchingProblem::new(g);
        let m1 = Matching::new(vec![(0, 0), (1, 1)], 4.0);
        let m2 = Matching::new(vec![(0, 1), (1, 0)], 4.0);
        assert!(p.is_success(&m1));
        assert!(p.is_success(&m2));
        assert!(!p.is_success(&Matching::new(vec![(0, 0)], 2.0)));
    }

    #[test]
    fn optimal_weight_agrees_with_brute_force() {
        for seed in 0..5 {
            let p = paper_workload(seed);
            let exact = brute_force_matching(p.graph()).weight();
            assert!((p.optimal_weight() - exact).abs() < 1e-9);
        }
    }

    #[test]
    fn decode_skips_negative_weight_edges_without_panicking() {
        // A negative edge in the relaxed support must be dropped, not fed
        // to the Hungarian pass (which rejects negative weights).
        let g = BipartiteGraph::new(
            2,
            2,
            vec![(0, 0, -1.0), (0, 1, 2.0), (1, 0, 2.0), (1, 1, 3.0)],
        )
        .expect("valid graph");
        let p = MatchingProblem::new(g);
        let cost = p.robust_cost(
            MatchingProblem::DEFAULT_MU1,
            MatchingProblem::DEFAULT_MU2,
            PenaltyKind::Squared,
        );
        // Full mass on every edge, including the negative one.
        let m = p.decode(&cost, &[1.0, 1.0, 1.0, 1.0]);
        assert!(
            m.pairs().iter().all(|&pair| pair != (0, 0)),
            "kept a negative edge"
        );
        assert_eq!(
            m.weight(),
            4.0,
            "best non-negative matching is (0,1) + (1,0)"
        );
    }
}
