//! A natively sparse workload: the 2D Poisson equation at 10⁵–10⁶
//! unknowns.
//!
//! The five-point finite-difference Laplacian on a `g × g` interior grid
//! gives a symmetric positive definite system `A x = b` with `n = g²`
//! unknowns and about `5 n` nonzeros — at the paper-scale `g = 320` that
//! is ~10⁵ unknowns and megabytes of resident matrix data, exactly the
//! regime where the array-resident memory-fault models have something
//! real to corrupt. The robust solver is the same budget-limited
//! restarted CG the paper uses for least squares (§3.3), running over a
//! [`CsrMatrix`] through the
//! [`LinearOperator`](robustify_linalg::LinearOperator) backend
//! abstraction: the
//! solve never materializes a dense matrix.
//!
//! Quality is judged by the reliable relative residual `‖A x − b‖ / ‖b‖`
//! against the residual the *same CG budget* reaches on a reliable
//! processor — the workload asks "did faults cost us the convergence the
//! budget buys", not "did we solve the PDE to machine precision".

use rand::{Rng, RngExt};
use robustify_core::{
    CgLeastSquares, CgReport, CoreError, QuadraticResidualCost, RobustOutcome, RobustProblem,
    SolveMethod, SolverSpec, Verdict,
};
use robustify_linalg::CsrMatrix;
use stochastic_fpu::{Fpu, ReliableFpu};

/// The canonical CG iteration budget for this workload (restart every 4,
/// the §3.3 configuration). The reference residual is computed with the
/// same budget, so solver specs should use it too.
pub const CG_BUDGET: usize = 12;

/// The restart interval paired with [`CG_BUDGET`].
pub const CG_RESTART: usize = 4;

/// A discretized 2D Poisson problem `A x = b` with a sparse robust solver.
///
/// # Examples
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use robustify_apps::poisson2d::{Poisson2d, CG_BUDGET};
/// use stochastic_fpu::ReliableFpu;
///
/// let p = Poisson2d::new(8, &mut StdRng::seed_from_u64(1));
/// assert_eq!(p.dim(), 64);
/// // A reliable run at the canonical budget reproduces the reference.
/// let report = p.solve_cg(CG_BUDGET, &mut ReliableFpu::new());
/// assert_eq!(p.relative_residual(&report.x), p.reference_metric());
/// ```
#[derive(Debug, Clone)]
pub struct Poisson2d {
    grid: usize,
    a: CsrMatrix,
    b: Vec<f64>,
    /// Reliable CG solution at the canonical budget (the ground truth a
    /// budget-limited stochastic run is measured against).
    reference: Vec<f64>,
    /// Relative residual of `reference` — the quality the budget buys
    /// reliably.
    ref_metric: f64,
}

impl Poisson2d {
    /// Builds the five-point Laplacian on a `grid × grid` interior grid
    /// with a random right-hand side in `[-1, 1)`, then computes the
    /// reliable reference solve at the canonical [`CG_BUDGET`].
    ///
    /// # Panics
    ///
    /// Panics if `grid == 0`.
    pub fn new<R: Rng>(grid: usize, rng: &mut R) -> Self {
        assert!(grid > 0, "grid must be positive");
        let n = grid * grid;
        let idx = |r: usize, c: usize| r * grid + c;
        let mut triplets = Vec::with_capacity(5 * n);
        for r in 0..grid {
            for c in 0..grid {
                let i = idx(r, c);
                triplets.push((i, i, 4.0));
                if r > 0 {
                    triplets.push((i, idx(r - 1, c), -1.0));
                }
                if r + 1 < grid {
                    triplets.push((i, idx(r + 1, c), -1.0));
                }
                if c > 0 {
                    triplets.push((i, idx(r, c - 1), -1.0));
                }
                if c + 1 < grid {
                    triplets.push((i, idx(r, c + 1), -1.0));
                }
            }
        }
        let a = CsrMatrix::from_triplets(n, n, &triplets)
            .expect("stencil indices are in bounds by construction");
        let b: Vec<f64> = (0..n).map(|_| rng.random_range(-1.0..1.0)).collect();
        let mut problem = Poisson2d {
            grid,
            a,
            b,
            reference: Vec::new(),
            ref_metric: f64::INFINITY,
        };
        let report = problem.solve_cg(CG_BUDGET, &mut ReliableFpu::new());
        problem.ref_metric = problem.relative_residual(&report.x);
        problem.reference = report.x;
        problem
    }

    /// Interior grid side length `g` (the problem has `g²` unknowns).
    pub fn grid(&self) -> usize {
        self.grid
    }

    /// Number of unknowns.
    pub fn dim(&self) -> usize {
        self.a.cols()
    }

    /// The sparse system matrix.
    pub fn a(&self) -> &CsrMatrix {
        &self.a
    }

    /// The right-hand side.
    pub fn b(&self) -> &[f64] {
        &self.b
    }

    /// The reliable reference residual at the canonical budget.
    pub fn reference_metric(&self) -> f64 {
        self.ref_metric
    }

    /// Solves with restarted CG over the sparse backend from the zero
    /// iterate.
    pub fn solve_cg<F: Fpu>(&self, iterations: usize, fpu: &mut F) -> CgReport {
        CgLeastSquares::new(&self.a, &self.b)
            .expect("problem shapes are consistent by construction")
            .with_max_iterations(iterations)
            .with_restart_interval(CG_RESTART)
            .solve(&vec![0.0; self.dim()], fpu)
    }

    /// The reliable relative residual `‖A x − b‖ / ‖b‖` (native
    /// measurement; non-finite candidates yield `∞`).
    pub fn relative_residual(&self, x: &[f64]) -> f64 {
        if x.iter().any(|v| !v.is_finite()) {
            return f64::INFINITY;
        }
        let mut fpu = ReliableFpu::new();
        let ax = self.a.matvec(&mut fpu, x).expect("x has dim() entries");
        let r: Vec<f64> = self.b.iter().zip(&ax).map(|(bi, ai)| bi - ai).collect();
        let num = robustify_linalg::norm2(&mut fpu, &r);
        let den = robustify_linalg::norm2(&mut fpu, &self.b);
        num / den.max(1e-300)
    }
}

impl RobustProblem for Poisson2d {
    type Solution = Vec<f64>;
    type Cost = QuadraticResidualCost<CsrMatrix>;

    fn name(&self) -> &'static str {
        "poisson2d"
    }

    fn cost(&self) -> Self::Cost {
        QuadraticResidualCost::new(self.a.clone(), self.b.clone())
            .expect("problem shapes are consistent by construction")
    }

    fn decode(&self, _cost: &Self::Cost, x: &[f64]) -> Vec<f64> {
        x.to_vec()
    }

    fn reference(&self) -> Vec<f64> {
        self.reference.clone()
    }

    /// The metric is the reliable relative residual; a trial succeeds when
    /// it lands within 1.5× of the residual the same budget reaches
    /// reliably.
    fn verify(&self, solution: &Vec<f64>) -> Verdict {
        let metric = self.relative_residual(solution);
        Verdict {
            // detlint::allow(fpu-routing, reason = "success threshold vs the fault-free reference is reliable verification")
            success: metric.is_finite() && metric <= 1.5 * self.ref_metric + 1e-12,
            metric,
        }
    }

    /// Adds [`SolveMethod::Cg`] over the sparse backend; there is no
    /// deterministic baseline (a direct factorization of a 10⁵-unknown
    /// system is the scenario the sparse workload exists to avoid).
    fn solve<F: Fpu>(
        &self,
        spec: &SolverSpec,
        fpu: &mut F,
    ) -> Result<RobustOutcome<Vec<f64>>, CoreError> {
        match spec.method {
            SolveMethod::Cg => {
                let report = CgLeastSquares::new(&self.a, &self.b)
                    .expect("problem shapes are consistent by construction")
                    .with_max_iterations(spec.iterations)
                    .with_restart_interval(spec.restart)
                    .solve(&vec![0.0; self.dim()], fpu);
                Ok(RobustOutcome {
                    solution: Some(report.x),
                    report: None,
                })
            }
            _ => robustify_core::default_solve(self, spec, fpu),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use stochastic_fpu::{BitFaultModel, FaultRate, NoisyFpu};

    fn small() -> Poisson2d {
        Poisson2d::new(8, &mut StdRng::seed_from_u64(7))
    }

    #[test]
    fn stencil_has_five_point_structure() {
        let p = small();
        assert_eq!(p.dim(), 64);
        // Corner node 0: diagonal + right + down.
        let (cols, vals) = p.a().row(0);
        assert_eq!(cols, &[0, 1, 8]);
        assert_eq!(vals, &[4.0, -1.0, -1.0]);
        // Interior node (1,1) = 9: full stencil, sorted by column.
        let (cols, vals) = p.a().row(9);
        assert_eq!(cols, &[1, 8, 9, 10, 17]);
        assert_eq!(vals, &[-1.0, -1.0, 4.0, -1.0, -1.0]);
        // nnz = 5n − 4g (each boundary side loses one neighbor per node).
        assert_eq!(p.a().nnz(), 5 * 64 - 4 * 8);
    }

    #[test]
    fn full_budget_cg_solves_the_system() {
        // Unrestarted CG converges in at most n iterations on a reliable
        // processor — the §3.3 bound, here through the sparse backend.
        let p = small();
        let report = CgLeastSquares::new(p.a(), p.b())
            .expect("consistent shapes")
            .with_max_iterations(p.dim())
            .solve(&vec![0.0; p.dim()], &mut ReliableFpu::new());
        assert!(
            p.relative_residual(&report.x) < 1e-6,
            "residual {}",
            p.relative_residual(&report.x)
        );
    }

    #[test]
    fn reference_matches_canonical_budget() {
        let p = small();
        let report = p.solve_cg(CG_BUDGET, &mut ReliableFpu::new());
        assert_eq!(report.x, p.reference());
        assert_eq!(p.relative_residual(&report.x), p.reference_metric());
        assert!(p.reference_metric().is_finite());
        assert!(p.reference_metric() > 0.0);
    }

    #[test]
    fn rate_zero_trial_succeeds() {
        let p = small();
        let spec = SolverSpec::cg(CG_BUDGET);
        let mut fpu = NoisyFpu::new(FaultRate::per_flop(0.0), BitFaultModel::emulated(), 1);
        let verdict = p.run_trial(&spec, &mut fpu);
        assert!(verdict.success, "metric {}", verdict.metric);
        assert_eq!(verdict.metric, p.reference_metric());
    }

    #[test]
    fn verify_rejects_breakdowns_and_garbage() {
        let p = small();
        assert!(!p.verify(&vec![f64::NAN; 64]).success);
        let far: Vec<f64> = vec![1e9; 64];
        assert!(!p.verify(&far).success);
    }

    #[test]
    fn heavy_faults_terminate_with_finite_iterates() {
        let p = small();
        let spec = SolverSpec::cg(CG_BUDGET);
        for seed in 0..5 {
            let mut fpu = NoisyFpu::new(FaultRate::per_flop(0.05), BitFaultModel::emulated(), seed);
            let verdict = p.run_trial(&spec, &mut fpu);
            assert!(verdict.metric.is_finite() || !verdict.success);
        }
    }

    #[test]
    fn unsupported_methods_fall_back_to_default_dispatch() {
        let p = small();
        // SGD routes through the generic sparse cost.
        let spec = SolverSpec::sgd(5, robustify_core::StepSchedule::Fixed(0.01));
        let out = p
            .solve(&spec, &mut ReliableFpu::new())
            .expect("sgd supported via default dispatch");
        assert!(out.solution.is_some());
        // The baseline breaks down: there is none.
        let verdict = p.run_trial(&SolverSpec::baseline(), &mut ReliableFpu::new());
        assert!(!verdict.success);
    }

    #[test]
    fn jacobi_preconditioner_cuts_iterations_on_scaled_laplacian() {
        // The plain 5-point Laplacian has a constant diagonal, so Jacobi is
        // a no-op there. Column-scale it across four orders of magnitude —
        // the kind of unit-mixing the preconditioner exists to undo — and
        // compare CGLS with and without Jacobi at the same budget.
        let p = small();
        let n = p.dim();
        let scale = |j: usize| 10f64.powi((j % 5) as i32 - 2);
        let mut triplets = Vec::with_capacity(p.a().nnz());
        for i in 0..n {
            let (cols, vals) = p.a().row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                triplets.push((i, j, v * scale(j)));
            }
        }
        let a = CsrMatrix::from_triplets(n, n, &triplets).expect("valid triplets");
        let budget = 3 * CG_BUDGET;
        let x0 = vec![0.0; n];

        let plain = CgLeastSquares::new(&a, p.b())
            .expect("consistent shapes")
            .with_max_iterations(budget)
            .with_tolerance(0.0)
            .solve(&x0, &mut ReliableFpu::new());
        let d = a.normal_diagonal(&mut ReliableFpu::new());
        let jacobi = CgLeastSquares::new(&a, p.b())
            .expect("consistent shapes")
            .with_max_iterations(budget)
            .with_tolerance(0.0)
            .with_jacobi_preconditioner(&d)
            .expect("diagonal has n entries")
            .solve(&x0, &mut ReliableFpu::new());

        // Same residual: the preconditioned run must reach the best cost
        // the unpreconditioned run achieves anywhere in its budget…
        let target = plain
            .trace
            .entries()
            .iter()
            .map(|&(_, c)| c)
            .fold(f64::INFINITY, f64::min);
        assert!(
            jacobi.final_cost <= target,
            "jacobi final {} vs plain best {target}",
            jacobi.final_cost
        );
        // …and strictly earlier (fewer iterations to the same residual).
        let crossing = jacobi
            .trace
            .entries()
            .iter()
            .find(|&&(_, c)| c <= target)
            .map(|&(t, _)| t)
            .expect("preconditioned trace reaches the target");
        assert!(
            crossing < plain.iterations,
            "jacobi crossed at {crossing}, plain used {} iterations",
            plain.iterations
        );
    }
}
