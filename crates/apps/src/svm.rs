//! Support vector machine fitting (§4.7, "other numerical problems"):
//! "many data fitting problems, like fitting support vector machines
//! (SVM), are defined as variational problems, and efficient stochastic
//! gradient algorithms for them already exist."
//!
//! A linear soft-margin SVM is already in the unconstrained variational
//! form the methodology needs:
//!
//! ```text
//! f(w, b) = λ/2 ‖w‖² + (1/m) Σᵢ [1 − yᵢ (w·xᵢ + b)]₊
//! ```
//!
//! so robustification is direct: evaluate the subgradient through the
//! faulty FPU and descend. On a stochastic processor the *training* data
//! never changes — the processor itself supplies the stochasticity that
//! mini-batching supplies in Pegasos-style solvers.

use rand::{Rng, RngExt};
use robustify_core::{
    CoreError, CostFunction, RobustProblem, Sgd, SolveReport, StepSchedule, Verdict,
};
use stochastic_fpu::{Fpu, FpuExt, ReliableFpu};

/// A binary classification dataset with `±1` labels.
///
/// # Examples
///
/// ```
/// use robustify_apps::svm::Dataset;
///
/// # fn main() -> Result<(), robustify_core::CoreError> {
/// let data = Dataset::new(vec![vec![0.0, 1.0], vec![1.0, 0.0]], vec![1.0, -1.0])?;
/// assert_eq!(data.len(), 2);
/// assert_eq!(data.features(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    points: Vec<Vec<f64>>,
    labels: Vec<f64>,
}

impl Dataset {
    /// Creates a dataset from feature vectors and `±1` labels.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the dataset is empty, rows
    /// have unequal lengths, a feature is non-finite, or a label is not
    /// `±1`.
    pub fn new(points: Vec<Vec<f64>>, labels: Vec<f64>) -> Result<Self, CoreError> {
        if points.is_empty() || points.len() != labels.len() {
            return Err(CoreError::invalid_config(
                "need an equal, positive number of points and labels",
            ));
        }
        let d = points[0].len();
        if d == 0 {
            return Err(CoreError::invalid_config(
                "points must have at least one feature",
            ));
        }
        for p in &points {
            if p.len() != d {
                return Err(CoreError::invalid_config(
                    "points must have equal dimensions",
                ));
            }
            if p.iter().any(|v| !v.is_finite()) {
                return Err(CoreError::invalid_config("features must be finite"));
            }
        }
        if labels.iter().any(|&y| y != 1.0 && y != -1.0) {
            return Err(CoreError::invalid_config("labels must be +1 or -1"));
        }
        Ok(Dataset { points, labels })
    }

    /// Generates two linearly separable blobs of `per_class` points each in
    /// `dim` dimensions, centred at `±center` along every axis with uniform
    /// jitter of `±spread`.
    ///
    /// # Panics
    ///
    /// Panics if `per_class == 0`, `dim == 0`, or `spread >= center`
    /// (the blobs would overlap).
    pub fn separable_blobs<R: Rng>(
        rng: &mut R,
        per_class: usize,
        dim: usize,
        center: f64,
        spread: f64,
    ) -> Self {
        assert!(per_class > 0 && dim > 0, "need a positive dataset size");
        assert!(
            spread < center,
            "spread {spread} must be below center {center}"
        );
        let mut points = Vec::with_capacity(2 * per_class);
        let mut labels = Vec::with_capacity(2 * per_class);
        for &sign in &[1.0f64, -1.0] {
            for _ in 0..per_class {
                points.push(
                    (0..dim)
                        .map(|_| sign * center + rng.random_range(-spread..spread))
                        .collect(),
                );
                labels.push(sign);
            }
        }
        Self::new(points, labels).expect("generated data is well formed")
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the dataset is empty (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Feature dimension.
    pub fn features(&self) -> usize {
        self.points[0].len()
    }

    /// The feature vectors.
    pub fn points(&self) -> &[Vec<f64>] {
        &self.points
    }

    /// The labels.
    pub fn labels(&self) -> &[f64] {
        &self.labels
    }
}

/// The soft-margin linear SVM objective over `(w, b)` (flattened as
/// `[w..., b]`), with hinge-loss subgradients evaluated through the FPU.
///
/// # Examples
///
/// ```
/// use robustify_apps::svm::{Dataset, SvmCost};
/// use robustify_core::CostFunction;
/// use stochastic_fpu::ReliableFpu;
///
/// # fn main() -> Result<(), robustify_core::CoreError> {
/// let data = Dataset::new(vec![vec![2.0], vec![-2.0]], vec![1.0, -1.0])?;
/// let cost = SvmCost::new(data, 0.1)?;
/// // w = 1, b = 0 classifies both points with margin 2: no hinge loss.
/// let f = cost.cost(&[1.0, 0.0], &mut ReliableFpu::new());
/// assert!((f - 0.05).abs() < 1e-12); // just the λ/2 ‖w‖² term
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SvmCost {
    data: Dataset,
    lambda: f64,
}

impl SvmCost {
    /// Creates the objective with regularization weight `lambda`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if `lambda` is not positive and
    /// finite.
    pub fn new(data: Dataset, lambda: f64) -> Result<Self, CoreError> {
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(CoreError::invalid_config(format!(
                "regularization weight must be positive and finite, got {lambda}"
            )));
        }
        Ok(SvmCost { data, lambda })
    }

    /// The dataset.
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// The regularization weight `λ`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The margin `yᵢ (w·xᵢ + b)` of point `i` through the FPU.
    fn margin<F: Fpu>(&self, i: usize, wb: &[f64], fpu: &mut F) -> f64 {
        let d = self.data.features();
        // Bias-initialized batched dot `b + w·xᵢ` (bit-identical to the
        // per-op loop it replaces).
        let score = fpu.gemv_row(wb[d], &wb[..d], &self.data.points[i]);
        fpu.mul(self.data.labels[i], score)
    }
}

impl CostFunction for SvmCost {
    fn dim(&self) -> usize {
        self.data.features() + 1
    }

    fn cost<F: Fpu>(&self, wb: &[f64], fpu: &mut F) -> f64 {
        assert_eq!(
            wb.len(),
            self.dim(),
            "parameter vector has the wrong dimension"
        );
        let d = self.data.features();
        let wsq = robustify_linalg::norm2_sq(fpu, &wb[..d]);
        // detlint::allow(fpu-routing, reason = "0.5*lambda is a constant fold; the norm FLOPs route through the Fpu")
        let mut total = fpu.mul(0.5 * self.lambda, wsq);
        // detlint::allow(fpu-routing, reason = "1/m is a setup-time constant")
        let inv_m = 1.0 / self.data.len() as f64;
        for i in 0..self.data.len() {
            let m = self.margin(i, wb, fpu);
            let hinge = fpu.sub(1.0, m).max(0.0);
            if hinge > 0.0 {
                let h = fpu.mul(inv_m, hinge);
                total = fpu.add(total, h);
            }
        }
        total
    }

    fn gradient<F: Fpu>(&self, wb: &[f64], fpu: &mut F, grad: &mut [f64]) {
        assert_eq!(
            wb.len(),
            self.dim(),
            "parameter vector has the wrong dimension"
        );
        let d = self.data.features();
        // grad = λ·w, batched (the copy is data movement, not a FLOP).
        grad[..d].copy_from_slice(&wb[..d]);
        fpu.scale_batch(self.lambda, &mut grad[..d]);
        grad[d] = 0.0;
        // detlint::allow(fpu-routing, reason = "1/m is a setup-time constant")
        let inv_m = 1.0 / self.data.len() as f64;
        for i in 0..self.data.len() {
            let m = self.margin(i, wb, fpu);
            // Subgradient of [1 − m]₊: active when m < 1.
            if fpu.lt(m, 1.0) {
                let coef = -self.data.labels[i] * inv_m;
                fpu.axpy_batch(coef, &self.data.points[i], &mut grad[..d]);
                grad[d] = fpu.add(grad[d], coef);
            }
        }
    }
}

/// An SVM training problem with robust (noisy-FPU) solving and reliable
/// reference scoring.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use robustify_apps::svm::{Dataset, SvmProblem};
/// use robustify_core::{Sgd, StepSchedule};
/// use stochastic_fpu::ReliableFpu;
///
/// # fn main() -> Result<(), robustify_core::CoreError> {
/// let data = Dataset::separable_blobs(&mut StdRng::seed_from_u64(1), 20, 3, 2.0, 0.8);
/// let problem = SvmProblem::new(data, 0.01)?;
/// let sgd = Sgd::new(2000, StepSchedule::Sqrt { gamma0: 0.5 });
/// let (wb, _report) = problem.solve_sgd(&sgd, &mut ReliableFpu::new());
/// assert_eq!(problem.accuracy(&wb), 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SvmProblem {
    cost: SvmCost,
}

impl SvmProblem {
    /// Creates the training problem.
    ///
    /// # Errors
    ///
    /// Propagates [`SvmCost::new`] validation errors.
    pub fn new(data: Dataset, lambda: f64) -> Result<Self, CoreError> {
        Ok(SvmProblem {
            cost: SvmCost::new(data, lambda)?,
        })
    }

    /// The underlying objective.
    pub fn cost(&self) -> &SvmCost {
        &self.cost
    }

    /// Trains with the given SGD configuration from the zero vector,
    /// returning `(parameters, report)`.
    pub fn solve_sgd<F: Fpu>(&self, sgd: &Sgd, fpu: &mut F) -> (Vec<f64>, SolveReport) {
        let mut cost = self.cost.clone();
        let x0 = vec![0.0; cost.dim()];
        let report = sgd.run(&mut cost, &x0, fpu);
        (report.x.clone(), report)
    }

    /// Training accuracy of `wb` in `[0, 1]`, scored reliably (the decode
    /// step). Non-finite parameters score `0`.
    pub fn accuracy(&self, wb: &[f64]) -> f64 {
        if wb.iter().any(|v| !v.is_finite()) {
            return 0.0;
        }
        let mut fpu = ReliableFpu::new();
        let data = self.cost.data();
        let correct = (0..data.len())
            .filter(|&i| {
                let m = self.cost.margin(i, wb, &mut fpu);
                m > 0.0
            })
            .count();
        correct as f64 / data.len() as f64
    }
}

impl RobustProblem for SvmProblem {
    type Solution = Vec<f64>;
    type Cost = SvmCost;

    fn name(&self) -> &'static str {
        "svm"
    }

    fn cost(&self) -> Self::Cost {
        self.cost.clone()
    }

    fn decode(&self, _cost: &Self::Cost, x: &[f64]) -> Vec<f64> {
        x.to_vec()
    }

    /// The reliable SGD reference the paper names as the comparison point:
    /// the Figure-scale training run (2000 sqrt-schedule iterations)
    /// executed on an exact FPU.
    fn reference(&self) -> Vec<f64> {
        let sgd = Sgd::new(2000, StepSchedule::Sqrt { gamma0: 0.5 });
        self.solve_sgd(&sgd, &mut ReliableFpu::new()).0
    }

    /// The metric is the misclassification fraction `1 − accuracy`;
    /// success requires at least 95% training accuracy.
    fn verify(&self, solution: &Vec<f64>) -> Verdict {
        // detlint::allow(fpu-routing, reason = "accuracy threshold is reliable verification arithmetic")
        Verdict::from_metric(1.0 - self.accuracy(solution), 0.05)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use robustify_core::StepSchedule;
    use stochastic_fpu::{BitFaultModel, FaultRate, NoisyFpu};

    fn blobs(seed: u64) -> Dataset {
        Dataset::separable_blobs(&mut StdRng::seed_from_u64(seed), 25, 4, 2.0, 0.9)
    }

    #[test]
    fn dataset_validation() {
        assert!(Dataset::new(vec![], vec![]).is_err());
        assert!(Dataset::new(vec![vec![1.0]], vec![2.0]).is_err());
        assert!(Dataset::new(vec![vec![1.0], vec![1.0, 2.0]], vec![1.0, -1.0]).is_err());
        assert!(Dataset::new(vec![vec![f64::NAN]], vec![1.0]).is_err());
        assert!(Dataset::new(vec![vec![]], vec![1.0]).is_err());
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let cost = SvmCost::new(blobs(1), 0.05).expect("valid lambda");
        let wb: Vec<f64> = (0..5).map(|i| 0.2 * (i as f64 - 2.0)).collect();
        let mut fpu = ReliableFpu::new();
        let mut grad = vec![0.0; 5];
        cost.gradient(&wb, &mut fpu, &mut grad);
        let h = 1e-6;
        for i in 0..5 {
            let mut p = wb.clone();
            let mut m = wb.clone();
            p[i] += h;
            m[i] -= h;
            let fd = (cost.cost(&p, &mut fpu) - cost.cost(&m, &mut fpu)) / (2.0 * h);
            assert!((grad[i] - fd).abs() < 1e-4 * (1.0 + fd.abs()), "lane {i}");
        }
    }

    #[test]
    fn separable_data_reaches_full_accuracy_reliably() {
        let problem = SvmProblem::new(blobs(2), 0.01).expect("valid lambda");
        let sgd = Sgd::new(3000, StepSchedule::Sqrt { gamma0: 0.5 });
        let (wb, _) = problem.solve_sgd(&sgd, &mut ReliableFpu::new());
        assert_eq!(problem.accuracy(&wb), 1.0);
    }

    #[test]
    fn training_survives_moderate_faults() {
        let problem = SvmProblem::new(blobs(3), 0.01).expect("valid lambda");
        let mut total = 0.0;
        let runs = 5;
        for seed in 0..runs {
            let sgd = Sgd::new(3000, StepSchedule::Sqrt { gamma0: 0.5 });
            let mut fpu = NoisyFpu::new(FaultRate::per_flop(0.02), BitFaultModel::emulated(), seed);
            let (wb, _) = problem.solve_sgd(&sgd, &mut fpu);
            total += problem.accuracy(&wb);
        }
        assert!(
            total / runs as f64 > 0.9,
            "mean accuracy {}",
            total / runs as f64
        );
    }

    #[test]
    fn accuracy_handles_degenerate_parameters() {
        let problem = SvmProblem::new(blobs(4), 0.01).expect("valid lambda");
        assert_eq!(problem.accuracy(&[f64::NAN; 5]), 0.0);
        // The zero vector classifies nothing correctly (margin 0 is wrong).
        assert_eq!(problem.accuracy(&[0.0; 5]), 0.0);
    }

    #[test]
    fn lambda_validation() {
        assert!(SvmCost::new(blobs(5), 0.0).is_err());
        assert!(SvmCost::new(blobs(5), f64::NAN).is_err());
    }

    #[test]
    #[should_panic(expected = "spread")]
    fn overlapping_blobs_rejected() {
        Dataset::separable_blobs(&mut StdRng::seed_from_u64(1), 5, 2, 1.0, 2.0);
    }
}
