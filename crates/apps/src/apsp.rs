//! All-pairs shortest paths (§4.6): robustified as the distance LP
//! (eqs. 4.10–4.12)
//!
//! ```text
//! minimize  Σ_ij −D_ij
//! s.t.      D_vv = 0                       ∀ v
//!           D_uw − D_uv ≤ L_vw             ∀ u, ∀ (v, w) ∈ E
//! ```
//!
//! maximizing the distances subject to edge relaxation constraints pins
//! every `D_ij` to the true shortest path length (for strongly connected
//! graphs). The baseline is Floyd–Warshall through the faulty FPU.

use robustify_core::{
    CoreError, LinearCost, LinearProgram, PenaltyCost, PenaltyKind, RobustProblem, Sgd,
    SolveReport, SolverSpec, Verdict,
};
use robustify_graph::{floyd_warshall, DiGraph, GraphError};
use robustify_linalg::Matrix;
use stochastic_fpu::{Fpu, ReliableFpu};

/// An all-pairs shortest path problem with a robust LP solver and the
/// Floyd–Warshall baseline.
///
/// # Examples
///
/// ```
/// use robustify_apps::apsp::ApspProblem;
/// use robustify_core::{Annealing, Sgd, StepSchedule};
/// use robustify_graph::DiGraph;
/// use stochastic_fpu::ReliableFpu;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = DiGraph::new(3, vec![(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)])?;
/// let p = ApspProblem::new(g)?;
/// let sgd = Sgd::new(8000, StepSchedule::Sqrt { gamma0: 0.05 })
///     .with_annealing(Annealing::default());
/// let (d, _report) = p.solve_sgd(&sgd, &mut ReliableFpu::new());
/// assert!((d[0][2] - 2.0).abs() < 0.2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ApspProblem {
    graph: DiGraph,
    reference: Vec<Vec<f64>>,
    length_scale: f64,
}

impl ApspProblem {
    /// Default penalty weight `μ` for the exact-penalty form.
    pub const DEFAULT_MU: f64 = 10.0;

    /// Creates the problem, computing the reliable Floyd–Warshall reference
    /// offline.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the graph is not strongly
    /// connected (the distance LP would be unbounded) or has no edges.
    pub fn new(graph: DiGraph) -> Result<Self, CoreError> {
        if graph.edges().is_empty() {
            return Err(CoreError::invalid_config("graph has no edges"));
        }
        let reference = floyd_warshall(&mut ReliableFpu::new(), &graph)
            .expect("reliable floyd-warshall cannot break down");
        if reference.iter().flatten().any(|v| !v.is_finite()) {
            return Err(CoreError::invalid_config(
                "graph must be strongly connected for the distance LP to be bounded",
            ));
        }
        let length_scale = graph
            .edges()
            .iter()
            .map(|&(_, _, w)| w)
            .fold(1e-12f64, f64::max);
        Ok(ApspProblem {
            graph,
            reference,
            length_scale,
        })
    }

    /// The underlying graph.
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// The reliable distance matrix (ground truth).
    pub fn reference(&self) -> &[Vec<f64>] {
        &self.reference
    }

    /// The distance LP of eqs. 4.10–4.12 over the `n²` variables `D_uv`
    /// (row-major), with lengths scaled by the maximum edge length.
    pub fn to_lp(&self) -> LinearProgram {
        let n = self.graph.vertex_count();
        let m = self.graph.edges().len();
        let dim = n * n;
        // Maximize Σ D_ij  ⇒  minimize Σ −D_ij.
        let c = vec![-1.0; dim];
        // Equalities: D_vv = 0.
        let e_mat = Matrix::from_fn(n, dim, |v, k| if k == v * n + v { 1.0 } else { 0.0 });
        // Inequalities: D_uw − D_uv ≤ L_vw for every u and edge (v, w).
        let edges = self.graph.edges();
        let a_mat = Matrix::from_fn(n * m, dim, |row, k| {
            let u = row / m;
            let (v, w, _) = edges[row % m];
            let mut coef = 0.0;
            if k == u * n + w {
                // detlint::allow(fpu-routing, reason = "LP constraint-matrix construction is reliable problem setup")
                coef += 1.0;
            }
            if k == u * n + v {
                // detlint::allow(fpu-routing, reason = "LP constraint-matrix construction is reliable problem setup")
                coef -= 1.0;
            }
            coef
        });
        let b: Vec<f64> = (0..n * m)
            .map(|row| edges[row % m].2 / self.length_scale)
            .collect();
        LinearProgram::minimize(c)
            .with_equalities(e_mat, vec![0.0; n])
            .expect("constructed shapes are consistent")
            .with_upper_bounds(a_mat, b)
            .expect("constructed shapes are consistent")
    }

    /// Solves the robust form with SGD on the exact-penalty LP, returning
    /// the decoded (rescaled) distance matrix and the solve report.
    pub fn solve_sgd<F: Fpu>(&self, sgd: &Sgd, fpu: &mut F) -> (Vec<Vec<f64>>, SolveReport) {
        let lp = self.to_lp();
        let mut cost = lp
            .penalized(Self::DEFAULT_MU, PenaltyKind::Squared)
            .expect("default mu is valid");
        let x0 = vec![0.0; lp.dim()];
        let report = sgd.run(&mut cost, &x0, fpu);
        (self.decode(&report.x), report)
    }

    /// Decodes the flat LP variables into an `n × n` distance matrix,
    /// rescaling to original lengths (native arithmetic).
    pub fn decode(&self, x: &[f64]) -> Vec<Vec<f64>> {
        let n = self.graph.vertex_count();
        (0..n)
            .map(|i| (0..n).map(|j| x[i * n + j] * self.length_scale).collect())
            .collect()
    }

    /// The fault-exposed Floyd–Warshall baseline.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError::NumericalBreakdown`] (a failed baseline
    /// run).
    pub fn solve_baseline<F: Fpu>(&self, fpu: &mut F) -> Result<Vec<Vec<f64>>, GraphError> {
        floyd_warshall(fpu, &self.graph)
    }

    /// Mean relative error of a distance matrix against the reliable
    /// reference, over off-diagonal pairs (native measurement; non-finite
    /// entries yield `∞`).
    pub fn mean_relative_error(&self, d: &[Vec<f64>]) -> f64 {
        let n = self.graph.vertex_count();
        if d.len() != n || d.iter().any(|row| row.len() != n) {
            return f64::INFINITY;
        }
        let mut total = 0.0;
        let mut count = 0usize;
        for (i, row) in d.iter().enumerate() {
            for (j, &got) in row.iter().enumerate() {
                if i == j {
                    continue;
                }
                if !got.is_finite() {
                    return f64::INFINITY;
                }
                let want = self.reference[i][j];
                total += (got - want).abs() / want.max(1e-300);
                count += 1;
            }
        }
        total / count.max(1) as f64
    }
}

impl RobustProblem for ApspProblem {
    type Solution = Vec<Vec<f64>>;
    type Cost = PenaltyCost<LinearCost>;

    fn name(&self) -> &'static str {
        "apsp"
    }

    fn cost(&self) -> Self::Cost {
        self.to_lp()
            .penalized(Self::DEFAULT_MU, PenaltyKind::Squared)
            .expect("default mu is valid")
    }

    fn decode(&self, _cost: &Self::Cost, x: &[f64]) -> Vec<Vec<f64>> {
        ApspProblem::decode(self, x)
    }

    fn reference(&self) -> Vec<Vec<f64>> {
        self.reference.clone()
    }

    /// The metric is the mean relative distance error; success requires it
    /// at most 5%.
    fn verify(&self, solution: &Vec<Vec<f64>>) -> Verdict {
        Verdict::from_metric(self.mean_relative_error(solution), 0.05)
    }

    fn baseline<F: Fpu>(&self, _spec: &SolverSpec, fpu: &mut F) -> Option<Vec<Vec<f64>>> {
        self.solve_baseline(fpu).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use robustify_core::StepSchedule;
    use robustify_graph::generators::random_strongly_connected;
    use stochastic_fpu::{BitFaultModel, FaultRate, NoisyFpu};

    fn triangle() -> ApspProblem {
        ApspProblem::new(
            DiGraph::new(3, vec![(0, 1, 1.0), (1, 2, 2.0), (2, 0, 4.0), (0, 2, 5.0)])
                .expect("valid graph"),
        )
        .expect("strongly connected")
    }

    #[test]
    fn lp_optimum_is_the_distance_matrix() {
        let p = triangle();
        let lp = p.to_lp();
        // The true (scaled) distance matrix must be feasible with objective
        // −Σ D_ij; any larger D would violate a relaxation constraint.
        let scale = 5.0;
        let flat: Vec<f64> = p.reference().iter().flatten().map(|&v| v / scale).collect();
        assert!(lp.violation(&flat) < 1e-12, "true distances infeasible");
        // Perturbing any entry upward violates feasibility.
        let n = 3;
        for i in 0..n {
            for j in 0..n {
                let mut bumped = flat.clone();
                bumped[i * n + j] += 0.2;
                assert!(
                    lp.violation(&bumped) > 1e-9,
                    "distance ({i}, {j}) is not pinned by the constraints"
                );
            }
        }
    }

    #[test]
    fn sgd_recovers_distances_reliably() {
        let p = triangle();
        let sgd =
            Sgd::new(8000, StepSchedule::Sqrt { gamma0: 0.05 }).with_annealing(Default::default());
        let (d, _) = p.solve_sgd(&sgd, &mut ReliableFpu::new());
        let err = p.mean_relative_error(&d);
        assert!(err < 0.1, "mean relative error {err}, d = {d:?}");
    }

    #[test]
    fn sgd_degrades_gracefully_under_faults() {
        let p = triangle();
        let mut total = 0.0;
        let runs = 5;
        for seed in 0..runs {
            let sgd = Sgd::new(8000, StepSchedule::Sqrt { gamma0: 0.05 })
                .with_annealing(Default::default());
            let mut fpu = NoisyFpu::new(FaultRate::per_flop(0.01), BitFaultModel::emulated(), seed);
            let (d, _) = p.solve_sgd(&sgd, &mut fpu);
            total += p.mean_relative_error(&d).min(10.0);
        }
        assert!(
            total / (runs as f64) < 1.0,
            "mean relative error {}",
            total / runs as f64
        );
    }

    #[test]
    fn baseline_is_exact_reliably() {
        let p = triangle();
        let d = p
            .solve_baseline(&mut ReliableFpu::new())
            .expect("reliable run");
        assert_eq!(p.mean_relative_error(&d), 0.0);
    }

    #[test]
    fn random_strongly_connected_workloads() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..5 {
            let p = ApspProblem::new(random_strongly_connected(&mut rng, 5, 5))
                .expect("strongly connected");
            let lp = p.to_lp();
            assert_eq!(lp.dim(), 25);
        }
    }

    #[test]
    fn disconnected_graph_rejected() {
        let g = DiGraph::new(3, vec![(0, 1, 1.0)]).expect("valid graph");
        assert!(ApspProblem::new(g).is_err());
    }

    #[test]
    fn metric_handles_malformed_matrices() {
        let p = triangle();
        assert_eq!(p.mean_relative_error(&[]), f64::INFINITY);
        let mut d = p.reference().to_vec();
        d[0][1] = f64::NAN;
        assert_eq!(p.mean_relative_error(&d), f64::INFINITY);
        assert_eq!(p.mean_relative_error(p.reference()), 0.0);
    }
}
