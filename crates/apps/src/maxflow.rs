//! Maximum flow (§4.5): robustified as the flow LP (eqs. 4.6–4.9)
//!
//! ```text
//! minimize  Σ_v −F_sv
//! s.t.      Σ_u F_uv − Σ_u F_vu = 0      ∀ v ∉ {s, t}   (conservation)
//!           F_uv ≤ C_uv                                  (capacity)
//!           −F_uv ≤ 0                                    (non-negativity)
//! ```
//!
//! with one variable per edge, solved by SGD on the exact-penalty form; the
//! baseline is Ford–Fulkerson through the faulty FPU.

use robustify_core::{
    CoreError, LinearCost, LinearProgram, PenaltyCost, PenaltyKind, RobustProblem, Sgd,
    SolveReport, SolverSpec, Verdict,
};
use robustify_graph::{max_flow, FlowNetwork, GraphError, MaxFlowResult};
use robustify_linalg::Matrix;
use stochastic_fpu::{Fpu, ReliableFpu};

/// A max-flow problem with a robust LP solver and the Ford–Fulkerson
/// baseline.
///
/// # Examples
///
/// ```
/// use robustify_apps::maxflow::MaxFlowProblem;
/// use robustify_core::{Annealing, Sgd, StepSchedule};
/// use robustify_graph::FlowNetwork;
/// use stochastic_fpu::ReliableFpu;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = FlowNetwork::new(4, 0, 3, vec![
///     (0, 1, 3.0), (0, 2, 2.0), (1, 3, 2.0), (2, 3, 3.0),
/// ])?;
/// let p = MaxFlowProblem::new(net)?;
/// let sgd = Sgd::new(6000, StepSchedule::Sqrt { gamma0: 0.02 })
///     .with_annealing(Annealing::default());
/// let (value, _report) = p.solve_sgd(&sgd, &mut ReliableFpu::new());
/// assert!((value - 4.0).abs() < 0.3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MaxFlowProblem {
    net: FlowNetwork,
    optimal_value: f64,
    capacity_scale: f64,
}

impl MaxFlowProblem {
    /// Default penalty weight `μ` for the exact-penalty form.
    pub const DEFAULT_MU: f64 = 10.0;

    /// Creates the problem, computing the ground-truth max flow offline
    /// with a reliable Ford–Fulkerson run.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the network has no edges.
    pub fn new(net: FlowNetwork) -> Result<Self, CoreError> {
        if net.edges().is_empty() {
            return Err(CoreError::invalid_config("flow network has no edges"));
        }
        let optimal_value = max_flow(&mut ReliableFpu::new(), &net)
            .expect("reliable max-flow cannot break down")
            .value;
        let capacity_scale = net
            .edges()
            .iter()
            .map(|&(_, _, c)| c)
            .fold(1e-12f64, f64::max);
        Ok(MaxFlowProblem {
            net,
            optimal_value,
            capacity_scale,
        })
    }

    /// The underlying network.
    pub fn network(&self) -> &FlowNetwork {
        &self.net
    }

    /// The ground-truth maximum flow value.
    pub fn optimal_value(&self) -> f64 {
        self.optimal_value
    }

    /// The flow LP of eqs. 4.6–4.9 over per-edge variables, with capacities
    /// scaled to `[0, 1]` so step sizes transfer across workloads.
    pub fn to_lp(&self) -> LinearProgram {
        let edges = self.net.edges();
        let m = edges.len();
        let n = self.net.vertex_count();
        let (s, t) = (self.net.source(), self.net.sink());
        // Objective: maximize the *net* source outflow, i.e. minimize
        // Σ −F_sv + Σ F_vs. The paper's eq. 4.6 writes only the −F_sv terms
        // (its networks have no edges into the source); counting return
        // edges keeps the LP correct on general workloads, where a cycle
        // through the source could otherwise inflate the objective.
        let c: Vec<f64> = edges
            .iter()
            .map(|&(u, v, _)| {
                if u == s {
                    -1.0
                } else if v == s {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        // Conservation rows for every v ∉ {s, t}: Σ_in − Σ_out = 0.
        let interior: Vec<usize> = (0..n).filter(|&v| v != s && v != t).collect();
        let mut lp = LinearProgram::minimize(c);
        if !interior.is_empty() {
            let e_mat = Matrix::from_fn(interior.len(), m, |row, e| {
                let v = interior[row];
                let (from, to, _) = edges[e];
                if to == v {
                    1.0
                } else if from == v {
                    -1.0
                } else {
                    0.0
                }
            });
            lp = lp
                .with_equalities(e_mat, vec![0.0; interior.len()])
                .expect("constructed shapes are consistent");
        }
        // Capacity rows: F_e ≤ C_e (scaled); non-negativity via the flag.
        let cap = Matrix::identity(m);
        let b: Vec<f64> = edges
            .iter()
            .map(|&(_, _, c)| c / self.capacity_scale)
            .collect();
        lp.with_upper_bounds(cap, b)
            .expect("constructed shapes are consistent")
            .with_nonneg()
    }

    /// Solves the robust form with SGD on the exact-penalty LP, returning
    /// the decoded flow value (rescaled to original capacities) and the
    /// solve report.
    pub fn solve_sgd<F: Fpu>(&self, sgd: &Sgd, fpu: &mut F) -> (f64, SolveReport) {
        let lp = self.to_lp();
        let mut cost = lp
            .penalized(Self::DEFAULT_MU, PenaltyKind::Squared)
            .expect("default mu is valid");
        let x0 = vec![0.0; lp.dim()];
        let report = sgd.run(&mut cost, &x0, fpu);
        (self.decode_value(&report.x), report)
    }

    /// Decodes a per-edge flow vector to the source outflow (native
    /// arithmetic; non-finite lanes count as zero).
    pub fn decode_value(&self, f: &[f64]) -> f64 {
        let s = self.net.source();
        self.net
            .edges()
            .iter()
            .zip(f)
            .map(|(&(u, v, _), &fe)| {
                if !fe.is_finite() {
                    return 0.0;
                }
                let fe = fe * self.capacity_scale;
                if u == s {
                    fe
                } else if v == s {
                    -fe
                } else {
                    0.0
                }
            })
            // detlint::allow(float-reassociation, reason = "flow-value measurement is reliable verification arithmetic")
            .sum()
    }

    /// The fault-exposed Ford–Fulkerson baseline.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError::NumericalBreakdown`] (a failed baseline
    /// run).
    pub fn solve_baseline<F: Fpu>(&self, fpu: &mut F) -> Result<MaxFlowResult, GraphError> {
        max_flow(fpu, &self.net)
    }

    /// Relative error of a flow value against the ground truth (native
    /// measurement; non-finite values yield `∞`).
    pub fn relative_error(&self, value: f64) -> f64 {
        if !value.is_finite() {
            return f64::INFINITY;
        }
        (value - self.optimal_value).abs() / self.optimal_value.max(1e-300)
    }
}

impl RobustProblem for MaxFlowProblem {
    type Solution = f64;
    type Cost = PenaltyCost<LinearCost>;

    fn name(&self) -> &'static str {
        "maxflow"
    }

    fn cost(&self) -> Self::Cost {
        self.to_lp()
            .penalized(Self::DEFAULT_MU, PenaltyKind::Squared)
            .expect("default mu is valid")
    }

    fn decode(&self, _cost: &Self::Cost, x: &[f64]) -> f64 {
        self.decode_value(x)
    }

    fn reference(&self) -> f64 {
        self.optimal_value
    }

    /// The metric is the relative flow-value error; success requires it at
    /// most 5% of the optimum.
    fn verify(&self, solution: &f64) -> Verdict {
        Verdict::from_metric(self.relative_error(*solution), 0.05)
    }

    fn baseline<F: Fpu>(&self, _spec: &SolverSpec, fpu: &mut F) -> Option<f64> {
        self.solve_baseline(fpu).ok().map(|r| r.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use robustify_core::StepSchedule;
    use robustify_graph::generators::random_flow_network;
    use stochastic_fpu::{BitFaultModel, FaultRate, NoisyFpu};

    fn diamond() -> MaxFlowProblem {
        MaxFlowProblem::new(
            FlowNetwork::new(
                4,
                0,
                3,
                vec![
                    (0, 1, 3.0),
                    (0, 2, 2.0),
                    (1, 3, 2.0),
                    (2, 3, 3.0),
                    (1, 2, 1.0),
                ],
            )
            .expect("valid network"),
        )
        .expect("non-empty network")
    }

    #[test]
    fn lp_optimum_matches_ford_fulkerson() {
        // Check that a feasible flow attaining the max value has LP
        // objective −value/scale and zero violation.
        let p = diamond();
        let lp = p.to_lp();
        // Max flow 5: F = [3, 2, 2, 3, 1] (edge order as constructed).
        let scale = 3.0;
        let f: Vec<f64> = [3.0, 2.0, 2.0, 3.0, 1.0]
            .iter()
            .map(|v| v / scale)
            .collect();
        assert!(
            lp.violation(&f) < 1e-12,
            "optimal flow infeasible in the LP"
        );
        assert!((lp.objective_value(&f) - (-5.0 / scale)).abs() < 1e-12);
        assert!((p.decode_value(&f) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn sgd_approaches_max_flow_reliably() {
        let p = diamond();
        let sgd =
            Sgd::new(6000, StepSchedule::Sqrt { gamma0: 0.02 }).with_annealing(Default::default());
        let (value, _) = p.solve_sgd(&sgd, &mut stochastic_fpu::ReliableFpu::new());
        assert!(
            p.relative_error(value) < 0.1,
            "value {value} vs optimal {}",
            p.optimal_value()
        );
    }

    #[test]
    fn sgd_degrades_gracefully_under_faults() {
        let p = diamond();
        let mut total = 0.0;
        let runs = 5;
        for seed in 0..runs {
            let sgd = Sgd::new(6000, StepSchedule::Sqrt { gamma0: 0.02 })
                .with_annealing(Default::default());
            let mut fpu = NoisyFpu::new(FaultRate::per_flop(0.01), BitFaultModel::emulated(), seed);
            let (value, _) = p.solve_sgd(&sgd, &mut fpu);
            total += p.relative_error(value).min(10.0);
        }
        assert!(
            total / (runs as f64) < 0.5,
            "mean relative error {}",
            total / runs as f64
        );
    }

    #[test]
    fn random_networks_roundtrip() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..5 {
            let p = MaxFlowProblem::new(random_flow_network(&mut rng, 6, 8))
                .expect("non-empty network");
            assert!(p.optimal_value() > 0.0);
            let lp = p.to_lp();
            assert_eq!(lp.dim(), p.network().edges().len());
        }
    }

    #[test]
    fn decode_ignores_non_finite_lanes() {
        let p = diamond();
        let v = p.decode_value(&[f64::NAN, 1.0 / 3.0, 0.0, 0.0, 0.0]);
        assert_eq!(v, 1.0, "NaN lane should contribute zero");
    }

    #[test]
    fn empty_network_rejected() {
        let net = FlowNetwork::new(2, 0, 1, vec![]).expect("structurally valid");
        assert!(MaxFlowProblem::new(net).is_err());
    }
}
